(** SCOOP processors (handlers): one fiber per processor running the
    handler loop of paper Fig. 7.

    The loop is a single generic drain loop parameterized by a {e mailbox}
    — a blocking batched view of the processor's request stream.  The
    configuration selects what backs it: the queue-of-queues of Fig. 4
    ([`Qoq]) or the original lock-plus-single-queue structure of Fig. 2
    ([`Direct]).  Each wakeup drains up to [Config.batch] requests.

    Create processors through {!Runtime.processor}; client-side access goes
    through {!Separate} blocks and {!Registration} operations, which use the
    mode-specific operations below. *)

type pq = Request.t Qs_sched.Bqueue.Spsc.t
(** A private queue of requests. *)

type lifecycle =
  | Running  (** serving requests *)
  | Draining  (** stream closed; serving what was already logged *)
  | Stopped  (** handler fiber exited cleanly *)
  | Failed  (** handler fiber exited after at least one closure raised *)

exception Aborted of int
(** Failure completion delivered to packaged requests discarded by
    {!abort} (argument: processor id). *)

exception Overloaded of int
(** A bounded mailbox refused or shed a request (argument: processor
    id).  Raised at admission under [`Fail]; delivered as the failure
    completion of shed requests under [`Shed_oldest]. *)

type reg_proxy = {
  px_call : (unit -> unit) -> unit;
  px_query : timeout:float option -> (unit -> Obj.t) -> Obj.t;
  px_query_async :
    (unit -> Obj.t) -> on_force:(bool -> unit) -> Obj.t Qs_sched.Promise.t;
  px_sync : timeout:float option -> unit;
  px_close : unit -> unit;
  px_on_poison : (exn -> Printexc.raw_backtrace -> unit) -> unit;
}
(** Per-registration wire operations of a remote processor, implemented
    by [Remote_client] and consumed by [Registration.make_remote]
    (defined here to break the type cycle between the two).  Payload
    closures cross the connection under [Marshal.Closures]: they must
    only reference module-level state of the shared binary — the node
    executes them against {e its} globals. *)

type remote_ops = {
  rem_node : string;  (** address label, for errors and [pp] *)
  rem_open : unit -> reg_proxy;  (** open one registration on the node *)
}

type t

val create :
  ?sink:Qs_obs.Sink.t ->
  ?pool:string ->
  id:int ->
  config:Config.t ->
  stats:Stats.t ->
  unit ->
  t
(** Create a processor and spawn its handler fiber.  Must run inside a
    scheduler.  With [sink], the handler records one ["core"]/["batch"]
    complete span per drained batch (track = processor id, arg = batch
    size).  With [pool], the handler fiber is pinned to that scheduler
    pool ([Qs_sched.Sched.spawn_in]): only the pool's member workers
    drain its requests.
    @raise Invalid_argument on an unknown pool name. *)

val create_remote :
  ?sink:Qs_obs.Sink.t ->
  id:int ->
  config:Config.t ->
  stats:Stats.t ->
  ops:remote_ops ->
  unit ->
  t
(** A remote processor: a client-side stand-in whose handler runs on a
    node reached through [ops].  No handler fiber is spawned and the
    exit latch is pre-filled ({!await_stopped} returns immediately —
    connection teardown is the runtime's job); the flat pool is disabled
    (remote registrations always use the packaged wire representation);
    {!admit} is a no-op (backpressure is enforced node-side). *)

val id : t -> int

val reserve : t -> Qs_queues.Spinlock.t
(** The multi-reservation spinlock (§3.3). *)

val is_remote : t -> bool

val remote_node : t -> string option
(** The node address label of a remote processor, [None] if local. *)

val remote_open : t -> reg_proxy
(** Open a registration on the remote node (the remote half of the
    separate rule).  @raise Invalid_argument on a local processor. *)

val admit : t -> unit
(** Admission control for a Call or Query about to be logged.  A no-op
    while [config.bound = 0] (every preset).  Otherwise, at the bound:
    [`Block] backs off (yielding) until the handler drains, [`Fail]
    raises {!Overloaded}, [`Shed_oldest] admits and marks the oldest
    pending request for shedding.  Sync and End are never admitted
    through this (they are control flow, not work). *)

(** {1 Flat request pool}

    A per-processor free list of preallocated {!Request.flat} records
    (the §3.2 queue-cache pattern applied to requests): clients pop a
    record, fill its inline fields and enqueue its knotted [self]; the
    handler loop pushes it back after serving (blocking queries are
    recycled by the awaiting client instead, after it consumes the
    embedded cell).  Both operations are allocation-free — an intrusive
    ABA-tagged Treiber stack over the preallocated slot array. *)

val no_flat : Request.flat
(** Shared sentinel returned by {!alloc_flat} on a pool miss (compare
    physically).  Callers must then issue the request in packaged form:
    the sentinel is never filled, enqueued or recycled. *)

val alloc_flat : t -> Request.flat
(** A reset record ready to fill when the free list has one (counted
    under [requests_flat] / [requests_pooled]), {!no_flat} otherwise
    (counted under [pool_misses] — the caller falls back to the packaged
    representation, so an empty pool degrades to the baseline path). *)

val recycle_flat : t -> Request.flat -> unit
(** Reset a record ({!Request.reset_flat} — recycling its embedded cell,
    so stale awaiters observe [Cell.Stale]) and return it to the free
    list.  Call only when the record's current use is provably over:
    after the handler served a call/pipelined query, after the awaiting
    client consumed a blocking query's cell, or — for an abandoned
    (timed-out) blocking query — on whichever side lost the cell's fill
    CAS, which proves the other side is done with the record. *)

(** {1 Queue-of-queues mode ([`Qoq])}

    These raise [Invalid_argument] on a [`Direct]-mode processor. *)

val take_private_queue : t -> pq
(** A fresh or recycled private queue for a new registration. *)

val enqueue_private_queue : t -> pq -> unit
(** Append a private queue to the queue-of-queues (the separate rule). *)

(** {1 Lock mode ([`Direct])}

    These raise [Invalid_argument] on a [`Qoq]-mode processor. *)

val lock_handler : t -> unit
(** Acquire the handler lock (blocks the client fiber). *)

val lock_handler_timeout : t -> float -> bool
(** {!lock_handler} bounded by that many seconds; [false] means the lock
    was not acquired (and is not held). *)

val unlock_handler : t -> unit

val enqueue_direct : t -> Request.t -> unit
(** Log a request into the handler's single request queue. *)

(** {1 Lifecycle}

    [Running --shutdown/abort--> Draining --handler exit--> Stopped/Failed].
    All transitions are idempotent: repeated [shutdown]/[abort] calls are
    no-ops after the first. *)

val lifecycle : t -> lifecycle

val shutdown : t -> unit
(** Graceful drain: close the processor's request stream.  The handler
    fiber serves everything already logged, then exits ([Stopped], or
    [Failed] if any closure ever raised).  Clients must not register
    afterwards. *)

val abort : t -> unit
(** Like {!shutdown}, but still-pending packaged requests are discarded
    unexecuted: their completions fail with {!Aborted} (counted under
    [Stats.aborted_requests]), pending syncs are still resumed so no
    client is left suspended, and [End] markers still accounted. *)

val await_stopped : t -> unit
(** Block the calling fiber until the handler fiber has exited (the
    completion latch filled at handler-loop exit). *)

val try_await_stopped : t -> timeout:float -> bool
(** Like {!await_stopped} bounded by [timeout] seconds; [false] means
    the handler was still running at the deadline (the
    [Runtime.shutdown ?grace] escalation signal). *)

val compare_by_id : t -> t -> int
