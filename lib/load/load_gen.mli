(** Open-loop load generator for the SCOOP runtime.

    Simulates [clients] independent clients issuing a mixed
    call/query/[query_async] workload against [handlers] processors at a
    target aggregate arrival rate.  Arrivals are scheduled on the clock
    (Poisson or bursty, deterministic per seed); latency is measured from
    each request's {e intended} arrival time, so backlog during overload
    is charged to the requests that suffered it instead of being silently
    dropped from the record (no coordinated omission). *)

type arrivals =
  | Poisson  (** exponential inter-arrival gaps at the per-client rate *)
  | Bursty of int
      (** groups of [n] simultaneous arrivals, groups spaced to meet the
          same average rate *)

type spec = {
  rate : float;  (** target aggregate arrivals per second (all clients) *)
  clients : int;  (** simulated client fibers, each with its own RNG *)
  handlers : int;  (** handler processors receiving the traffic *)
  duration : float;  (** seconds of open-loop issue (excludes drain) *)
  arrivals : arrivals;
  service_us : float;  (** busy-work burned per request on the handler *)
  mix : int * int * int;  (** weights: call, blocking query, query_async *)
  seed : int;  (** root seed; client [c] uses [[| seed; c |]] *)
}

val default : spec
(** 500/s, 8 clients, 2 handlers, 2 s, Poisson, 50 us service, mix
    (1, 1, 2), seed 42.  Override fields with [{ default with ... }]. *)

(** One measured operating point. *)
type point = {
  p_rate : float;  (** target rate of this run *)
  p_issued : int;  (** requests actually issued *)
  p_measured : int;  (** completions with a recorded latency sample *)
  p_achieved : float;  (** completions per second over [duration] *)
  p_p50_ns : int;
  p_p99_ns : int;
  p_p999_ns : int;
  p_max_ns : int;
  p_mean_ns : float;
  p_sheds : int;  (** runtime [shed_requests] during the run *)
  p_timeouts : int;  (** client-observed {!Scoop.Timeout} raises *)
  p_failures : int;  (** client-observed overload/poison raises *)
  p_queue_p99_ns : int;  (** handler-side admitted-to-served p99 *)
  p_exec_p99_ns : int;  (** handler-side served-to-done p99 *)
}

val in_slo : ?deadline:float -> point -> bool
(** No sheds, timeouts or failures — and, when [deadline] (seconds) is
    given, client p99 at or under it. *)

val run_point : ?domains:int -> ?config:Scoop.Config.t -> spec -> point
(** Run one operating point on a fresh runtime (so back-to-back points
    never share queue state).  [config] defaults to {!Scoop.Config.qoq};
    pass a config with a deadline/bound/overflow policy to exercise
    admission control.  Blocks until issue and a bounded drain finish. *)

val sweep :
  ?domains:int -> ?config:Scoop.Config.t -> spec -> rates:float list ->
  point list
(** [run_point] per rate, in order, each on a fresh runtime. *)

val knee : ?deadline:float -> point list -> float option * float option
(** [(highest in-SLO rate, lowest out-of-SLO rate)] over a sweep. *)

val point_json : ?deadline:float -> point -> Qs_obs.Json.t

val report_json :
  ?deadline:float -> ?domains:int -> spec -> point list -> Qs_obs.Json.t
(** The [BENCH_load.json] document: [{suite; config; points}]. *)

val pp_point : ?deadline:float -> Format.formatter -> point -> unit
