(* Open-loop load generator for the SCOOP runtime.

   The generator models N independent clients, each a fiber with its own
   deterministic RNG stream, issuing requests against a pool of handler
   processors at a target *aggregate* arrival rate.  Arrivals follow the
   clock, not the service: each client computes the absolute intended
   arrival time of its next request up front and sleeps until then.  When
   the system falls behind, intended timestamps keep advancing anyway, so
   a request issued late carries its backlog in its measured latency —
   the coordinated-omission-safe discipline of wrk2/HdrHistogram, as
   opposed to closed-loop harnesses that silently stop the clock while
   waiting.

   Latency is therefore measured from the *intended* arrival to the
   moment the request's effect is client-observable:
     - [call]         completion recorded inside the handler body
     - [query]        recorded on the client once the reply lands
     - [query_async]  recorded in the promise's fulfil hook (never blocks)

   Every operation runs under a fresh [Runtime.separate] block, so a
   poisoned registration (shed call, handler fault) never leaks into
   subsequent traffic.  Errors are counted, not fatal. *)

type arrivals = Poisson | Bursty of int

type spec = {
  rate : float;
  clients : int;
  handlers : int;
  duration : float;
  arrivals : arrivals;
  service_us : float;
  mix : int * int * int;
  seed : int;
}

let default =
  {
    rate = 500.;
    clients = 8;
    handlers = 2;
    duration = 2.;
    arrivals = Poisson;
    service_us = 50.;
    mix = (1, 1, 2);
    seed = 42;
  }

type point = {
  p_rate : float;
  p_issued : int;
  p_measured : int;
  p_achieved : float;
  p_p50_ns : int;
  p_p99_ns : int;
  p_p999_ns : int;
  p_max_ns : int;
  p_mean_ns : float;
  p_sheds : int;
  p_timeouts : int;
  p_failures : int;
  p_queue_p99_ns : int;
  p_exec_p99_ns : int;
}

let in_slo ?deadline p =
  p.p_sheds = 0 && p.p_timeouts = 0 && p.p_failures = 0
  &&
  match deadline with
  | None -> true
  | Some d -> float_of_int p.p_p99_ns <= d *. 1e9

(* Spin for [service_ns] of wall clock.  Burning cycles (rather than
   sleeping) is deliberate: it occupies the handler's domain exactly the
   way real per-request work would, which is what positions the knee. *)
let busy_work service_ns =
  if service_ns > 0 then begin
    let stop = Qs_obs.Clock.now_ns () + service_ns in
    while Qs_obs.Clock.now_ns () < stop do
      ()
    done
  end

let run_point ?(domains = 1) ?config (s : spec) : point =
  if s.rate <= 0. then invalid_arg "Load_gen.run_point: rate must be > 0";
  if s.clients <= 0 then invalid_arg "Load_gen.run_point: clients must be > 0";
  if s.handlers <= 0 then invalid_arg "Load_gen.run_point: handlers must be > 0";
  let config =
    match config with Some c -> c | None -> Scoop.Config.qoq
  in
  let hist = Qs_obs.Histogram.registry () in
  let h_client = Qs_obs.Histogram.make hist "client_ns" in
  let issued = Atomic.make 0
  and measured = Atomic.make 0
  and timeouts = Atomic.make 0
  and failures = Atomic.make 0 in
  let service_ns = int_of_float (s.service_us *. 1e3) in
  let duration_ns = int_of_float (s.duration *. 1e9) in
  let w_call, w_query, w_async = s.mix in
  let w_total = max 1 (w_call + w_query + w_async) in
  let snap = ref None in
  let runtime_p99 = ref (0, 0) in
  Scoop.Runtime.run ~domains ~config (fun rt ->
      let handlers =
        Array.init s.handlers (fun _ -> Scoop.Runtime.processor rt)
      in
      let finished = Array.init s.clients (fun _ -> Qs_sched.Ivar.create ()) in
      let start = Qs_obs.Clock.now_ns () in
      let record intended =
        Qs_obs.Histogram.record h_client (Qs_obs.Clock.now_ns () - intended);
        Atomic.incr measured
      in
      let issue rng intended =
        let h = handlers.(Random.State.int rng s.handlers) in
        let pick = Random.State.int rng w_total in
        Atomic.incr issued;
        try
          Scoop.Runtime.separate rt h (fun reg ->
              if pick < w_call then
                Scoop.Registration.call reg (fun () ->
                    busy_work service_ns;
                    record intended)
              else if pick < w_call + w_query then begin
                let (_ : int) =
                  Scoop.Registration.query reg (fun () ->
                      busy_work service_ns;
                      0)
                in
                record intended
              end
              else
                let p =
                  Scoop.Registration.query_async reg (fun () ->
                      busy_work service_ns;
                      0)
                in
                Qs_sched.Promise.on_fulfill p (fun (_ : int) -> record intended))
        with
        | Scoop.Timeout -> Atomic.incr timeouts
        | Scoop.Overloaded _ | Scoop.Handler_failure _ -> Atomic.incr failures
      in
      let client c =
        let rng = Random.State.make [| s.seed; c |] in
        let rate_c = s.rate /. float_of_int s.clients in
        let mean_gap_ns = 1e9 /. rate_c in
        let intended = ref start in
        let in_burst = ref 0 in
        let running = ref true in
        while !running do
          (match s.arrivals with
          | Poisson ->
              let u = Random.State.float rng 1.0 in
              let u = if u <= 0. then epsilon_float else u in
              intended := !intended + int_of_float (-.log u *. mean_gap_ns)
          | Bursty n ->
              let n = max 1 n in
              if !in_burst >= n then begin
                intended :=
                  !intended + int_of_float (float_of_int n *. mean_gap_ns);
                in_burst := 0
              end;
              incr in_burst);
          if !intended - start >= duration_ns then running := false
          else begin
            let now = Qs_obs.Clock.now_ns () in
            if !intended > now then
              Qs_sched.Sched.sleep (float_of_int (!intended - now) *. 1e-9);
            issue rng !intended
          end
        done;
        Qs_sched.Ivar.fill finished.(c) ()
      in
      for c = 0 to s.clients - 1 do
        Qs_sched.Sched.spawn (fun () -> client c)
      done;
      Array.iter Qs_sched.Ivar.read finished;
      (* Grace: wait for in-flight completions to settle.  A sync barrier
         would be neater but can itself shed or time out past the knee, so
         poll for quiescence with a bounded budget instead. *)
      let settled = ref (-1) in
      let budget = ref 40 in
      let outcomes () =
        Atomic.get measured + Atomic.get timeouts + Atomic.get failures
      in
      while !budget > 0 && outcomes () <> !settled do
        settled := outcomes ();
        Qs_sched.Sched.sleep 0.05;
        decr budget
      done;
      let st = Scoop.Runtime.stats rt in
      snap := Some (Scoop.Stats.snapshot st);
      let rh = Scoop.Stats.histograms st in
      let q d = Qs_obs.Histogram.quantile d 0.99 in
      runtime_p99 :=
        ( q (Qs_obs.Histogram.dist rh "queue_wait_ns"),
          q (Qs_obs.Histogram.dist rh "exec_ns") ));
  let d = Qs_obs.Histogram.dist hist "client_ns" in
  let sheds =
    match !snap with None -> 0 | Some sn -> sn.Scoop.Stats.s_shed_requests
  in
  let queue_p99, exec_p99 = !runtime_p99 in
  {
    p_rate = s.rate;
    p_issued = Atomic.get issued;
    p_measured = Atomic.get measured;
    p_achieved = float_of_int (Atomic.get measured) /. s.duration;
    p_p50_ns = Qs_obs.Histogram.quantile d 0.5;
    p_p99_ns = Qs_obs.Histogram.quantile d 0.99;
    p_p999_ns = Qs_obs.Histogram.quantile d 0.999;
    p_max_ns = Qs_obs.Histogram.quantile d 1.0;
    p_mean_ns = Qs_obs.Histogram.mean d;
    p_sheds = sheds;
    p_timeouts = Atomic.get timeouts;
    p_failures = Atomic.get failures;
    p_queue_p99_ns = queue_p99;
    p_exec_p99_ns = exec_p99;
  }

let sweep ?domains ?config (s : spec) ~rates =
  List.map (fun r -> run_point ?domains ?config { s with rate = r }) rates

let point_json ?deadline p =
  Qs_obs.Json.Obj
    [
      ("rate", Float p.p_rate);
      ("achieved", Float p.p_achieved);
      ("issued", Int p.p_issued);
      ("measured", Int p.p_measured);
      ("p50_ns", Int p.p_p50_ns);
      ("p99_ns", Int p.p_p99_ns);
      ("p999_ns", Int p.p_p999_ns);
      ("max_ns", Int p.p_max_ns);
      ("mean_ns", Float p.p_mean_ns);
      ("shed_requests", Int p.p_sheds);
      ("timeouts", Int p.p_timeouts);
      ("failures", Int p.p_failures);
      ("queue_p99_ns", Int p.p_queue_p99_ns);
      ("exec_p99_ns", Int p.p_exec_p99_ns);
      ("in_slo", Bool (in_slo ?deadline p));
    ]

let report_json ?deadline ?(domains = 1) (s : spec) points =
  let arrivals_json =
    match s.arrivals with
    | Poisson -> Qs_obs.Json.String "poisson"
    | Bursty n -> Qs_obs.Json.String (Printf.sprintf "bursty:%d" (max 1 n))
  in
  let w_call, w_query, w_async = s.mix in
  Qs_obs.Json.Obj
    [
      ("suite", String "qs-load");
      ( "config",
        Obj
          [
            ("clients", Int s.clients);
            ("handlers", Int s.handlers);
            ("domains", Int domains);
            ("duration_s", Float s.duration);
            ("arrivals", arrivals_json);
            ("service_us", Float s.service_us);
            ( "mix",
              Obj
                [
                  ("call", Int w_call);
                  ("query", Int w_query);
                  ("query_async", Int w_async);
                ] );
            ("seed", Int s.seed);
            ( "deadline_s",
              match deadline with None -> Null | Some d -> Float d );
          ] );
      ("points", List (List.map (point_json ?deadline) points));
    ]

let pp_point ?deadline fmt p =
  let ms ns = float_of_int ns /. 1e6 in
  Format.fprintf fmt
    "rate %8.1f/s  achieved %8.1f/s  p50 %7.3f ms  p99 %7.3f ms  p999 %7.3f \
     ms  sheds %d  timeouts %d  failures %d%s"
    p.p_rate p.p_achieved (ms p.p_p50_ns) (ms p.p_p99_ns) (ms p.p_p999_ns)
    p.p_sheds p.p_timeouts p.p_failures
    (if in_slo ?deadline p then "  [in SLO]" else "  [OUT of SLO]")

(* Knee location: the highest swept rate that still meets the SLO,
   paired with the first rate that degrades.  [None] on either side when
   the whole sweep is out of (resp. within) the SLO. *)
let knee ?deadline points =
  let ok, bad = List.partition (in_slo ?deadline) points in
  let rate p = p.p_rate in
  let max_ok =
    List.fold_left (fun acc p -> Some (max (Option.value acc ~default:0.) (rate p))) None ok
  in
  let min_bad =
    List.fold_left
      (fun acc p ->
        Some (min (Option.value acc ~default:infinity) (rate p)))
      None bad
  in
  (max_ok, min_bad)
