(** Bridge from the runtime's event rings to the semantics' replay
    checker: validate that a traced execution conforms to the
    logging/execution discipline of the operational semantics.

    {!Qs_semantics.Replay} checks one event stream against the
    per-processor request-log automaton, but it is only sound when each
    stream contains a single client's events — with several concurrent
    registrations merged, the interleaving of their log watermarks is
    not recoverable and the checker would report phantom violations (or
    miss real ones).  The runtime attributes every SCOOP-level event to
    its issuing registration ({!Scoop.Trace.event.client}, from
    [Registration.rid]); this module partitions a merged trace on
    (processor, registration) before replaying, and {e rejects} streams
    containing unattributed client events instead of guessing.

    Violations are reported with the sink sequence number of the
    offending event ({!Scoop.Trace.event.seq}), so a failure can be
    pinpointed in the ring (and in a Chrome export) directly. *)

type stream = {
  st_proc : int;  (** processor (handler) id *)
  st_client : int;  (** registration id ([Registration.rid]) *)
  st_events : int;  (** SCOOP-level events attributed to this stream *)
}

type violation = {
  v_proc : int;
  v_client : int;
  v_seq : int;  (** sink sequence number of the offending event *)
  v_violation : Qs_semantics.Replay.violation;
}

type report = {
  events : int;  (** SCOOP-level events checked (attributable kinds) *)
  skipped : int;
      (** events with no replay meaning (handler failures, promise
          rejections) — observed but not checked *)
  streams : stream list;  (** the (processor, registration) partitions *)
  violations : violation list;
}

type error =
  | Unattributed of { proc : int; seq : int; kind : Scoop.Trace.kind }
      (** a checkable client event carried no registration id: the trace
          predates attribution, or was recorded outside a registration —
          checking it would require guessing stream membership *)

val event_of_kind : Scoop.Trace.kind -> proc:int -> Qs_semantics.Replay.event option
(** The replay meaning of one trace event, if it has one:
    [Reserved -> Reserved], [Call_logged -> Logged],
    [Call_executed -> Executed], [Sync_round_trip]/[Query_round_trip ->
    Synced], [Query_pipelined -> Pipelined], [Sync_elided -> Elided],
    [Request_timeout -> TimedOut], [Request_shed -> Shed],
    [Registration_poisoned -> Poisoned].  [Handler_failed],
    [Promise_rejected] and [Query_shed] have no per-registration log
    meaning and map to [None] (a shed query rejects a rendezvous
    without consuming a logged-call slot; its round-trip completion,
    when present, already maps to [Synced]). *)

val check_events : Scoop.Trace.event list -> (report, error) result
(** Partition the (chronologically ordered) events per (processor,
    registration) and replay each partition through
    {!Qs_semantics.Replay.check_all}.  [Ok] carries the full report —
    including any violations; use {!ok} for a boolean gate. *)

val check_trace : Scoop.Trace.t -> (report, error) result
(** [check_events] over [Scoop.Trace.events].  Read only in quiescence
    (after the traced run); under ring overflow the oldest events are
    gone, which can surface as spurious violations — check
    [Qs_obs.Sink.dropped] first when in doubt. *)

val ok : (report, error) result -> bool
(** A usable gate: the trace was attributable and had no violations. *)

val pp_report : Format.formatter -> report -> unit
val pp_violation : Format.formatter -> violation -> unit
val pp_error : Format.formatter -> error -> unit
