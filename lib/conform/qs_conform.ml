(* Runtime trace -> semantics replay bridge (see qs_conform.mli).

   The merged chronological event stream from [Scoop.Trace.events] is
   split per (processor, registration): the registration id is the
   [client] attribution the runtime stamps on every SCOOP-level event,
   and a registration is the exact scope over which the replay
   automaton's log watermarks are meaningful (one client fiber logging
   into one private queue).  Each partition is an independent
   single-client stream, which is the soundness precondition of
   [Qs_semantics.Replay] — feeding it the merged stream instead (as the
   benchmark's conformance probe once did) interleaves unrelated log
   watermarks and reports phantom violations under concurrency.

   Events keep their sink sequence numbers through the partitioning, so
   a violation at partition index i is mapped back to the ring slot
   (and Chrome-export row) of the offending event. *)

module T = Scoop.Trace
module R = Qs_semantics.Replay

type stream = {
  st_proc : int;
  st_client : int;
  st_events : int;
}

type violation = {
  v_proc : int;
  v_client : int;
  v_seq : int;
  v_violation : R.violation;
}

type report = {
  events : int;
  skipped : int;
  streams : stream list;
  violations : violation list;
}

type error = Unattributed of { proc : int; seq : int; kind : T.kind }

let event_of_kind (k : T.kind) ~proc =
  match k with
  | T.Reserved -> Some (R.Reserved proc)
  | T.Call_logged -> Some (R.Logged proc)
  | T.Call_executed _ -> Some (R.Executed proc)
  | T.Sync_round_trip _ | T.Query_round_trip _ -> Some (R.Synced proc)
  | T.Query_pipelined _ -> Some (R.Pipelined proc)
  | T.Sync_elided -> Some (R.Elided proc)
  | T.Request_timeout -> Some (R.TimedOut proc)
  | T.Request_shed -> Some (R.Shed proc)
  | T.Registration_poisoned -> Some (R.Poisoned proc)
  (* A query shed rejects a rendezvous without consuming a logged-call
     slot — the replay automaton's Shed label models call sheds only.
     The rejected rendezvous still completes (the client observes
     [Overloaded]), so a blocking query records its round trip — and
     mapping that to Synced stays sound: by the time the rejection
     wakes the client the handler has consumed everything logged before
     the query. *)
  | T.Handler_failed | T.Promise_rejected | T.Query_shed -> None

type bucket = {
  mutable b_events : R.event list; (* reversed *)
  mutable b_seqs : int list; (* reversed, aligned with b_events *)
  mutable b_count : int;
}

let check_events evs =
  let tbl : (int * int, bucket) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let events = ref 0 in
  let skipped = ref 0 in
  let error = ref None in
  List.iter
    (fun (e : T.event) ->
      if !error = None then
        match event_of_kind e.T.kind ~proc:e.T.proc with
        | None -> incr skipped
        | Some re ->
          if e.T.client = 0 then
            error :=
              Some
                (Unattributed { proc = e.T.proc; seq = e.T.seq; kind = e.T.kind })
          else begin
            incr events;
            let key = (e.T.proc, e.T.client) in
            let b =
              match Hashtbl.find_opt tbl key with
              | Some b -> b
              | None ->
                let b = { b_events = []; b_seqs = []; b_count = 0 } in
                Hashtbl.add tbl key b;
                order := key :: !order;
                b
            in
            b.b_events <- re :: b.b_events;
            b.b_seqs <- e.T.seq :: b.b_seqs;
            b.b_count <- b.b_count + 1
          end)
    evs;
  match !error with
  | Some e -> Error e
  | None ->
    let keys = List.rev !order in
    let streams =
      List.map
        (fun ((proc, client) as key) ->
          let b = Hashtbl.find tbl key in
          { st_proc = proc; st_client = client; st_events = b.b_count })
        keys
    in
    let violations =
      List.concat_map
        (fun ((proc, client) as key) ->
          let b = Hashtbl.find tbl key in
          let stream = List.rev b.b_events in
          let seqs = Array.of_list (List.rev b.b_seqs) in
          List.map
            (fun (v : R.violation) ->
              {
                v_proc = proc;
                v_client = client;
                v_seq = seqs.(v.R.index);
                v_violation = v;
              })
            (R.check_all stream))
        keys
    in
    Ok { events = !events; skipped = !skipped; streams; violations }

let check_trace tr = check_events (T.events tr)

let ok = function
  | Ok r -> r.violations = []
  | Error _ -> false

let pp_violation ppf v =
  Format.fprintf ppf "processor %d, registration %d, ring seq %d: %a" v.v_proc
    v.v_client v.v_seq R.pp_violation v.v_violation

let pp_error ppf = function
  | Unattributed { proc; seq; kind } ->
    let name =
      match kind with
      | T.Reserved -> "reserve"
      | T.Call_logged -> "call_log"
      | T.Call_executed _ -> "call_exec"
      | T.Sync_round_trip _ -> "sync"
      | T.Sync_elided -> "sync_elided"
      | T.Query_round_trip _ -> "query"
      | T.Query_pipelined _ -> "query_async"
      | T.Handler_failed -> "handler_failure"
      | T.Registration_poisoned -> "poisoned"
      | T.Promise_rejected -> "promise_rejected"
      | T.Request_timeout -> "timeout"
      | T.Request_shed -> "shed"
      | T.Query_shed -> "shed_query"
    in
    Format.fprintf ppf
      "unattributed %s event on processor %d (ring seq %d): the stream \
       cannot be partitioned per registration"
      name proc seq

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d events across %d registration streams (%d skipped)@," r.events
    (List.length r.streams) r.skipped;
  List.iter
    (fun s ->
      Format.fprintf ppf "  processor %d / registration %d: %d events@,"
        s.st_proc s.st_client s.st_events)
    r.streams;
  (match r.violations with
  | [] -> Format.fprintf ppf "no violations"
  | vs ->
    Format.fprintf ppf "%d violation(s):" (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "@,  %a" pp_violation v) vs);
  Format.fprintf ppf "@]"
