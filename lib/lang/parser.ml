(* Recursive-descent parser for the Quicksilver-mini language. *)

exception Parse_error of { line : int; message : string }

type state = {
  mutable tokens : (Lexer.token * int) list;
}

let peek st =
  match st.tokens with
  | (tok, line) :: _ -> (tok, line)
  | [] -> (Lexer.EOF, 0)

let advance st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let fail st message =
  let _, line = peek st in
  raise (Parse_error { line; message })

let expect st tok =
  let got, _ = peek st in
  if got = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.describe tok)
         (Lexer.describe got))

let ident st =
  match peek st with
  | Lexer.IDENT name, _ ->
    advance st;
    name
  | got, _ ->
    fail st (Printf.sprintf "expected an identifier, found %s" (Lexer.describe got))

let integer st =
  match peek st with
  | Lexer.INT n, _ ->
    advance st;
    n
  | Lexer.MINUS, _ ->
    advance st;
    (match peek st with
    | Lexer.INT n, _ ->
      advance st;
      -n
    | got, _ ->
      fail st (Printf.sprintf "expected an integer, found %s" (Lexer.describe got)))
  | got, _ ->
    fail st (Printf.sprintf "expected an integer, found %s" (Lexer.describe got))

(* expr := term (('+' | '-' | '*') term)*   — left associative, no
   precedence (parenthesize to group; the checker's examples do). *)
let rec expr st =
  let lhs = term st in
  let rec loop acc =
    match peek st with
    | Lexer.PLUS, _ ->
      advance st;
      loop (Ast.Binop (Ast.Add, acc, term st))
    | Lexer.MINUS, _ ->
      advance st;
      loop (Ast.Binop (Ast.Sub, acc, term st))
    | Lexer.STAR, _ ->
      advance st;
      loop (Ast.Binop (Ast.Mul, acc, term st))
    | _ -> acc
  in
  loop lhs

and term st =
  match peek st with
  | Lexer.INT _, _ | Lexer.MINUS, _ -> Ast.Int (integer st)
  | Lexer.IDENT v, _ -> (
    advance st;
    match peek st with
    | Lexer.DOT, _ ->
      advance st;
      Ast.Read (v, ident st)
    | _ -> Ast.Local v)
  | Lexer.LPAREN, _ ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN;
    e
  | got, _ ->
    fail st (Printf.sprintf "expected an expression, found %s" (Lexer.describe got))

let cond st =
  let lhs = expr st in
  let op =
    match peek st with
    | Lexer.EQEQ, _ -> Ast.Eq
    | Lexer.NEQ, _ -> Ast.Ne
    | Lexer.LT, _ -> Ast.Lt
    | Lexer.GT, _ -> Ast.Gt
    | Lexer.LE, _ -> Ast.Le
    | Lexer.GE, _ -> Ast.Ge
    | got, _ ->
      fail st (Printf.sprintf "expected a comparison, found %s" (Lexer.describe got))
  in
  advance st;
  Ast.Rel (op, lhs, expr st)

let rec block st =
  expect st Lexer.LBRACE;
  let rec stmts acc =
    match peek st with
    | Lexer.RBRACE, _ ->
      advance st;
      List.rev acc
    | _ -> stmts (stmt st :: acc)
  in
  stmts []

and stmt st =
  match peek st with
  | Lexer.SEPARATE, _ ->
    advance st;
    let rec handlers acc =
      let h = ident st in
      match peek st with
      | Lexer.COMMA, _ ->
        advance st;
        handlers (h :: acc)
      | _ -> List.rev (h :: acc)
    in
    let hs = handlers [] in
    (match peek st with
    | Lexer.WHEN, _ ->
      advance st;
      let c = cond st in
      Ast.Separate_when (hs, c, block st)
    | _ -> Ast.Separate (hs, block st))
  | Lexer.REPEAT, _ ->
    advance st;
    let n = integer st in
    Ast.Repeat (n, block st)
  | Lexer.IF, _ ->
    advance st;
    let c = cond st in
    let then_ = block st in
    let else_ =
      match peek st with
      | Lexer.ELSE, _ ->
        advance st;
        block st
      | _ -> []
    in
    Ast.If (c, then_, else_)
  | Lexer.LET, _ ->
    advance st;
    let v = ident st in
    expect st Lexer.EQUALS;
    let h = ident st in
    expect st Lexer.DOT;
    let x = ident st in
    expect st Lexer.SEMI;
    Ast.Query_read (v, h, x)
  | Lexer.LOCAL, _ ->
    advance st;
    let v = ident st in
    expect st Lexer.EQUALS;
    let e = expr st in
    expect st Lexer.SEMI;
    Ast.Local_set (v, e)
  | Lexer.PRINT, _ ->
    advance st;
    let e = expr st in
    expect st Lexer.SEMI;
    Ast.Print e
  | Lexer.IDENT name, _ -> (
    advance st;
    match peek st with
    | Lexer.DOT, _ ->
      advance st;
      let x = ident st in
      expect st Lexer.ASSIGN;
      let e = expr st in
      expect st Lexer.SEMI;
      Ast.Async_set (name, x, e)
    | Lexer.ASSIGN, _ ->
      advance st;
      let e = expr st in
      expect st Lexer.SEMI;
      Ast.Local_set (name, e)
    | got, _ ->
      fail st
        (Printf.sprintf "expected '.' or ':=' after %S, found %s" name
           (Lexer.describe got)))
  | got, _ ->
    fail st (Printf.sprintf "expected a statement, found %s" (Lexer.describe got))

let handler_decl st =
  expect st Lexer.HANDLER;
  let name = ident st in
  expect st Lexer.LBRACE;
  let rec vars acc =
    match peek st with
    | Lexer.VAR, _ ->
      advance st;
      let v = ident st in
      expect st Lexer.EQUALS;
      let init = integer st in
      expect st Lexer.SEMI;
      vars ((v, init) :: acc)
    | Lexer.RBRACE, _ ->
      advance st;
      List.rev acc
    | got, _ ->
      fail st
        (Printf.sprintf "expected 'var' or '}', found %s" (Lexer.describe got))
  in
  { Ast.h_name = name; h_vars = vars [] }

let client_decl st =
  expect st Lexer.CLIENT;
  let name = ident st in
  { Ast.c_name = name; c_body = block st }

let program source =
  let st = { tokens = Lexer.tokenize source } in
  let rec items handlers clients =
    match peek st with
    | Lexer.HANDLER, _ -> items (handler_decl st :: handlers) clients
    | Lexer.CLIENT, _ -> items handlers (client_decl st :: clients)
    | Lexer.EOF, _ ->
      { Ast.handlers = List.rev handlers; clients = List.rev clients }
    | got, _ ->
      fail st
        (Printf.sprintf "expected 'handler' or 'client', found %s"
           (Lexer.describe got))
  in
  items [] []
