(* Translation into the executable operational semantics, so that surface
   programs can be exhaustively explored (interleavings, deadlock,
   guarantee checking) with [Qs_semantics].

   The semantics abstracts data away, so the translation maps statements
   to named actions:
     h.x := e     ->  call(h, "<client>:h.x:=")
     let v = h.x  ->  query(h, "<client>:h.x")
     local/print  ->  atom
     repeat n     ->  n-fold unrolling (bounded by [max_unroll])
   Conditionals cannot be resolved without data; [translate] rejects
   them.  Handler names are numbered in declaration order starting at
   100; clients at 1. *)

exception Unsupported of string

let max_unroll = 8

let translate (p : Ast.program) =
  Check.check_program p;
  let handler_id h =
    let rec find i = function
      | [] -> raise (Unsupported ("unknown handler " ^ h))
      | (hd : Ast.handler_decl) :: rest ->
        if hd.Ast.h_name = h then 100 + i else find (i + 1) rest
    in
    find 0 p.Ast.handlers
  in
  let rec stmt client = function
    | Ast.Separate (hs, body) ->
      Qs_semantics.Syntax.Separate
        (List.map handler_id hs, Qs_semantics.Syntax.seq (stmts client body))
    | Ast.Async_set (h, x, _) ->
      Qs_semantics.Syntax.Call
        (handler_id h, Printf.sprintf "%s:%s.%s:=" client h x)
    | Ast.Query_read (_, h, x) ->
      Qs_semantics.Syntax.Query
        (handler_id h, Printf.sprintf "%s:%s.%s" client h x)
    | Ast.Local_set (v, _) ->
      Qs_semantics.Syntax.Atom (Printf.sprintf "%s:local %s" client v)
    | Ast.Print _ -> Qs_semantics.Syntax.Atom (client ^ ":print")
    | Ast.Repeat (n, body) ->
      if n > max_unroll then
        raise
          (Unsupported
             (Printf.sprintf
                "repeat %d exceeds the exploration unrolling bound (%d)" n
                max_unroll));
      Qs_semantics.Syntax.seq
        (List.concat (List.init n (fun _ -> stmts client body)))
    | Ast.If _ ->
      raise (Unsupported "conditionals cannot be explored without data")
    | Ast.Separate_when _ ->
      raise (Unsupported "wait conditions cannot be explored without data")
  and stmts client body = List.map (stmt client) body in
  Qs_semantics.State.init
    (List.mapi
       (fun i (c : Ast.client_decl) ->
         (i + 1, Qs_semantics.Syntax.seq (stmts c.Ast.c_name c.Ast.c_body)))
       p.Ast.clients)

(* Convenience: explore a surface program and report deadlock states. *)
let explore ?(mode = Qs_semantics.Step.qs_client_exec) p =
  Qs_semantics.Explore.reachable mode (translate p)
