(** Quicksilver-mini: a small SCOOP surface language.

    The miniature of the paper's Quicksilver compiler: {!Parser} builds
    the {!Ast}, {!Check} enforces the separate-block discipline (SCOOP's
    type rule), {!Compile} runs programs on the SCOOP/Qs runtime,
    {!Codegen} lowers clients to the sync-coalescing IR and runs the
    static pass of §3.4.2 on them, and {!To_semantics} exports programs
    to the exhaustive semantics explorer. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Check = Check
module Compile = Compile
module Codegen = Codegen
module To_semantics = To_semantics

let parse = Parser.program

let run = Compile.parse_and_run
