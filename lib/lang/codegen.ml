(* Naive code generation into the sync-coalescing IR (§3.4.3: "a naive
   code generator will produce a sync before every array read") and the
   end-to-end optimization report.

   A client's body is lowered to a CFG of [Qs_syncopt.Ir] instructions:

     let v = h.x;   ->  Sync h; Read h     (client-side query, Fig. 10b)
     h.x := e;      ->  Async h            (enqueue of a packaged call)
     local/print    ->  Local
     repeat n       ->  a loop: body block with a back edge
     if             ->  a diamond

   Separate block boundaries contribute an [Async h] at entry (the
   reservation enqueue, which invalidates nothing but involves the
   handler) — conservatively modelled as [Local] since the private queue
   is fresh — and an [Async h] for the END marker at exit, which is what
   actually invalidates the synced state.

   [optimize] runs the static pass (Figs. 12–13) on the generated CFG
   and reports which syncs it removes: the same decision procedure the
   Static benchmark configuration relies on, now reachable from surface
   programs. *)

type lowering = {
  cfg : Qs_syncopt.Cfg.t;
  sync_count : int; (* syncs the naive generator emitted *)
}

let lower_client (c : Ast.client_decl) =
  (* First pass: build a block list with explicit successor cells, then
     freeze through the Cfg builder (which wants succ ids at add time —
     so we do our own numbering and emit in order). *)
  let blocks : (Qs_syncopt.Ir.inst list * int list ref) list ref = ref [] in
  let fresh_block insts =
    let cell = ref [] in
    blocks := !blocks @ [ (insts, cell) ];
    (List.length !blocks - 1, cell)
  in
  let syncs = ref 0 in
  (* Lower [stmts] starting in a fresh block; returns (entry block id,
     exit cell to patch with the continuation). *)
  let lower_seq stmts =
    let rec go acc stmts =
      match stmts with
      | [] ->
        let id, cell = fresh_block (List.rev acc) in
        (id, [ (id, cell) ])
      | Ast.Separate (hs, body) :: rest ->
        (* Close the current straight-line block, lower the body, then
           the END markers (async on each handler), then continue. *)
        let before_id, before_cell = fresh_block (List.rev acc) in
        let body_entry, body_exits = go [] body in
        before_cell := [ body_entry ];
        let ends = List.map (fun h -> Qs_syncopt.Ir.Async h) hs in
        let rest_entry, rest_exits = go (List.rev ends) rest in
        List.iter (fun (_, cell) -> cell := [ rest_entry ]) body_exits;
        (before_id, rest_exits)
      | Ast.Separate_when (hs, Ast.Rel (_, l, r), body) :: rest ->
        (* A wait condition is a retry loop: each attempt syncs and reads
           every handler the condition mentions; a failed attempt
           releases the reservation (an END, i.e. async, per handler) and
           loops. *)
        let before_id, before_cell = fresh_block (List.rev acc) in
        let reads_of e =
          let rec collect acc = function
            | Ast.Read (h, _) -> h :: acc
            | Ast.Binop (_, a, b) -> collect (collect acc a) b
            | Ast.Int _ | Ast.Local _ -> acc
          in
          collect [] e
        in
        let cond_handlers = List.sort_uniq compare (reads_of l @ reads_of r) in
        let attempt =
          List.concat_map
            (fun h ->
              incr syncs;
              [ Qs_syncopt.Ir.Sync h; Qs_syncopt.Ir.Read h ])
            cond_handlers
        in
        let attempt_id, attempt_cell = fresh_block attempt in
        before_cell := [ attempt_id ];
        let release_id, release_cell =
          fresh_block (List.map (fun h -> Qs_syncopt.Ir.Async h) hs)
        in
        release_cell := [ attempt_id ];
        let body_entry, body_exits = go [] body in
        attempt_cell := [ body_entry; release_id ];
        let ends = List.map (fun h -> Qs_syncopt.Ir.Async h) hs in
        let rest_entry, rest_exits = go (List.rev ends) rest in
        List.iter (fun (_, cell) -> cell := [ rest_entry ]) body_exits;
        (before_id, rest_exits)
      | Ast.Async_set (h, _, _) :: rest -> go (Qs_syncopt.Ir.Async h :: acc) rest
      | Ast.Query_read (_, h, _) :: rest ->
        incr syncs;
        go (Qs_syncopt.Ir.Read h :: Qs_syncopt.Ir.Sync h :: acc) rest
      | (Ast.Local_set _ | Ast.Print _) :: rest ->
        go (Qs_syncopt.Ir.Local :: acc) rest
      | Ast.Repeat (_, body) :: rest ->
        (* header -> body -> header; header -> rest *)
        let header_id, header_cell = fresh_block (List.rev acc) in
        let body_entry, body_exits = go [] body in
        let rest_entry, rest_exits = go [] rest in
        header_cell := [ body_entry; rest_entry ];
        List.iter (fun (_, cell) -> cell := [ header_id ]) body_exits;
        (header_id, rest_exits)
      | Ast.If (_, then_, else_) :: rest ->
        let cond_id, cond_cell = fresh_block (List.rev acc) in
        let then_entry, then_exits = go [] then_ in
        let else_entry, else_exits = go [] else_ in
        let rest_entry, rest_exits = go [] rest in
        cond_cell := [ then_entry; else_entry ];
        List.iter (fun (_, cell) -> cell := [ rest_entry ]) (then_exits @ else_exits);
        (cond_id, rest_exits)
    in
    go [] stmts
  in
  let _entry, _exits = lower_seq c.Ast.c_body in
  (* Emit into the real builder in id order. *)
  let b = Qs_syncopt.Cfg.builder () in
  List.iter
    (fun (insts, cell) ->
      ignore (Qs_syncopt.Cfg.add_block b ~succs:!cell insts : int))
    !blocks;
  { cfg = Qs_syncopt.Cfg.freeze b; sync_count = !syncs }

type optimization_report = {
  client : string;
  emitted_syncs : int;
  removed_syncs : int;
  report : Qs_syncopt.Pass.report;
}

let optimize (p : Ast.program) =
  Check.check_program p;
  List.map
    (fun (c : Ast.client_decl) ->
      let { cfg; sync_count } = lower_client c in
      let report = Qs_syncopt.Pass.run cfg in
      {
        client = c.Ast.c_name;
        emitted_syncs = sync_count;
        removed_syncs = List.length report.Qs_syncopt.Pass.removed;
        report;
      })
    p.Ast.clients

let pp_report ppf r =
  Format.fprintf ppf
    "client %s: naive codegen emitted %d sync(s); the static pass removed \
     %d@.%a"
    r.client r.emitted_syncs r.removed_syncs Qs_syncopt.Pass.pp_report r.report
