(** Static checking — the analogue of SCOOP's separate type system:
    handler state is only reachable through a separate block reserving
    its handler; when-clause reads only over that block's handlers;
    locals bound before use; no nested re-reservation. *)

type error = {
  client : string;
  message : string;
}

exception Check_error of error

val check_program : Ast.program -> unit
(** @raise Check_error on the first violation. *)
