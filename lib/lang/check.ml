(* Static checks — the analogue of SCOOP's separate type system (§2.1):
   "methods may only be called on a separate object if it is protected by
   a separate block".

   - every handler named in a separate block, asynchronous write or query
     must be declared;
   - handler variables may only be touched inside a block reserving their
     handler (reservations nest);
   - a separate block must not re-reserve a handler already reserved in
     scope (nested re-reservation of the same handler can only deadlock,
     §2.5);
   - local variables must be bound (by [local] or [let]) before use;
   - handler variable names must exist on the handler. *)

type error = {
  client : string;
  message : string;
}

exception Check_error of error

let fail client fmt =
  Format.kasprintf (fun message -> raise (Check_error { client; message })) fmt

let check_program (p : Ast.program) =
  let handler_vars =
    List.map (fun h -> (h.Ast.h_name, List.map fst h.Ast.h_vars)) p.Ast.handlers
  in
  let dup_handlers =
    List.length (List.sort_uniq compare (List.map fst handler_vars))
    <> List.length handler_vars
  in
  if dup_handlers then
    raise (Check_error { client = "<program>"; message = "duplicate handler name" });
  let check_client (c : Ast.client_decl) =
    let fail fmt = fail c.Ast.c_name fmt in
    let check_handler_var h x =
      match List.assoc_opt h handler_vars with
      | None -> fail "unknown handler %s" h
      | Some vars ->
        if not (List.mem x vars) then fail "handler %s has no variable %s" h x
    in
    (* [reads]: handlers whose variables the expression may read — only
       non-empty inside a when-clause, where the reads are evaluated under
       the block's own registration. *)
    let rec check_expr ?(reads = []) locals = function
      | Ast.Int _ -> ()
      | Ast.Local v ->
        if not (List.mem v locals) then fail "unbound local variable %s" v
      | Ast.Read (h, x) ->
        if not (List.mem h reads) then
          fail
            "handler read %s.%s is only allowed in the when-clause of a \
             block reserving %s"
            h x h;
        check_handler_var h x
      | Ast.Binop (_, a, b) ->
        check_expr ~reads locals a;
        check_expr ~reads locals b
    in
    let check_cond ?reads locals (Ast.Rel (_, a, b)) =
      check_expr ?reads locals a;
      check_expr ?reads locals b
    in
    (* [reserved]: handlers reserved by enclosing blocks; [locals]: bound
       local variables.  Returns the locals bound after the statements
       (bindings are sequential and scoped to the client). *)
    let rec check_stmts reserved locals stmts =
      List.fold_left (check_stmt reserved) locals stmts
    and check_reservation reserved hs =
      List.iter
        (fun h ->
          if not (List.mem_assoc h handler_vars) then fail "unknown handler %s" h;
          if List.mem h reserved then
            fail "handler %s is already reserved by an enclosing block" h)
        hs;
      let dups = List.length (List.sort_uniq compare hs) <> List.length hs in
      if dups then fail "the same handler appears twice in one separate block"
    and check_stmt reserved locals = function
      | Ast.Separate (hs, body) ->
        check_reservation reserved hs;
        ignore (check_stmts (hs @ reserved) locals body : string list);
        locals
      | Ast.Separate_when (hs, c, body) ->
        check_reservation reserved hs;
        check_cond ~reads:hs locals c;
        ignore (check_stmts (hs @ reserved) locals body : string list);
        locals
      | Ast.Async_set (h, x, e) ->
        if not (List.mem h reserved) then
          fail "write to %s.%s outside a separate block reserving %s" h x h;
        check_handler_var h x;
        check_expr locals e;
        locals
      | Ast.Query_read (v, h, x) ->
        if not (List.mem h reserved) then
          fail "read of %s.%s outside a separate block reserving %s" h x h;
        check_handler_var h x;
        v :: locals
      | Ast.Local_set (v, e) ->
        check_expr locals e;
        v :: locals
      | Ast.Repeat (n, body) ->
        if n < 0 then fail "repeat count must be non-negative";
        (* Bindings made inside a loop body are in scope on the next
           iteration, so thread them through once. *)
        check_stmts reserved locals body
      | Ast.If (c, t, e) ->
        check_cond locals c;
        ignore (check_stmts reserved locals t : string list);
        ignore (check_stmts reserved locals e : string list);
        (* Conservatively, only bindings made before the if survive. *)
        locals
      | Ast.Print e ->
        check_expr locals e;
        locals
    in
    ignore (check_stmts [] [] c.Ast.c_body : string list)
  in
  List.iter check_client p.Ast.clients
