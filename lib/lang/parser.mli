(** Recursive-descent parser for Quicksilver-mini source text. *)

exception Parse_error of { line : int; message : string }

val program : string -> Ast.program
(** Parse a whole program.
    @raise Parse_error on syntax errors (with the offending line)
    @raise Lexer.Lex_error on lexical errors. *)
