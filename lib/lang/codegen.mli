(** Naive code generation into the sync-coalescing IR (a sync before
    every handler read, §3.4.3) and the end-to-end run of the static
    pass over surface programs. *)

type lowering = {
  cfg : Qs_syncopt.Cfg.t;
  sync_count : int;
}

val lower_client : Ast.client_decl -> lowering

type optimization_report = {
  client : string;
  emitted_syncs : int;
  removed_syncs : int;
  report : Qs_syncopt.Pass.report;
}

val optimize : Ast.program -> optimization_report list
(** Lower every client and run the pass of Figs. 12–13 on it.
    @raise Check.Check_error on static errors. *)

val pp_report : Format.formatter -> optimization_report -> unit
