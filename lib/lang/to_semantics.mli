(** Export surface programs to the executable operational semantics for
    exhaustive exploration.  Data-dependent control flow (if, wait
    conditions) cannot be explored and is rejected; [repeat] is unrolled
    up to {!max_unroll}. *)

exception Unsupported of string

val max_unroll : int

val translate : Ast.program -> Qs_semantics.State.t
(** @raise Unsupported on conditionals / wait conditions / large repeats
    @raise Check.Check_error on static errors. *)

val explore :
  ?mode:Qs_semantics.Step.mode -> Ast.program -> Qs_semantics.Explore.stats
