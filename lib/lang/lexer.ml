(* Hand-written lexer for the Quicksilver-mini language. *)

type token =
  | HANDLER
  | CLIENT
  | VAR
  | SEPARATE
  | REPEAT
  | IF
  | ELSE
  | LET
  | LOCAL
  | WHEN
  | PRINT
  | IDENT of string
  | INT of int
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | COMMA
  | DOT
  | ASSIGN (* := *)
  | EQUALS (* = *)
  | PLUS
  | MINUS
  | STAR
  | EQEQ
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | EOF

exception Lex_error of { line : int; message : string }

let keyword = function
  | "handler" -> Some HANDLER
  | "client" -> Some CLIENT
  | "var" -> Some VAR
  | "separate" -> Some SEPARATE
  | "repeat" -> Some REPEAT
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "let" -> Some LET
  | "local" -> Some LOCAL
  | "when" -> Some WHEN
  | "print" -> Some PRINT
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Tokenize the whole input; tokens are paired with their line for error
   reporting. *)
let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let error message = raise (Lex_error { line = !line; message }) in
  let rec go i =
    if i >= n then emit EOF
    else
      match source.[i] with
      | '\n' ->
        incr line;
        go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && source.[i + 1] = '/' ->
        (* line comment *)
        let rec skip j = if j < n && source.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      | '{' ->
        emit LBRACE;
        go (i + 1)
      | '}' ->
        emit RBRACE;
        go (i + 1)
      | '(' ->
        emit LPAREN;
        go (i + 1)
      | ')' ->
        emit RPAREN;
        go (i + 1)
      | ';' ->
        emit SEMI;
        go (i + 1)
      | ',' ->
        emit COMMA;
        go (i + 1)
      | '.' ->
        emit DOT;
        go (i + 1)
      | '+' ->
        emit PLUS;
        go (i + 1)
      | '-' ->
        emit MINUS;
        go (i + 1)
      | '*' ->
        emit STAR;
        go (i + 1)
      | ':' when i + 1 < n && source.[i + 1] = '=' ->
        emit ASSIGN;
        go (i + 2)
      | '=' when i + 1 < n && source.[i + 1] = '=' ->
        emit EQEQ;
        go (i + 2)
      | '=' ->
        emit EQUALS;
        go (i + 1)
      | '!' when i + 1 < n && source.[i + 1] = '=' ->
        emit NEQ;
        go (i + 2)
      | '<' when i + 1 < n && source.[i + 1] = '=' ->
        emit LE;
        go (i + 2)
      | '<' ->
        emit LT;
        go (i + 1)
      | '>' when i + 1 < n && source.[i + 1] = '=' ->
        emit GE;
        go (i + 2)
      | '>' ->
        emit GT;
        go (i + 1)
      | c when is_digit c ->
        let rec scan j = if j < n && is_digit source.[j] then scan (j + 1) else j in
        let j = scan i in
        emit (INT (int_of_string (String.sub source i (j - i))));
        go j
      | c when is_ident_start c ->
        let rec scan j = if j < n && is_ident_char source.[j] then scan (j + 1) else j in
        let j = scan i in
        let word = String.sub source i (j - i) in
        emit (match keyword word with Some k -> k | None -> IDENT word);
        go j
      | c -> error (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !tokens

let describe = function
  | HANDLER -> "'handler'"
  | CLIENT -> "'client'"
  | VAR -> "'var'"
  | SEPARATE -> "'separate'"
  | REPEAT -> "'repeat'"
  | IF -> "'if'"
  | ELSE -> "'else'"
  | LET -> "'let'"
  | LOCAL -> "'local'"
  | WHEN -> "'when'"
  | PRINT -> "'print'"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | ASSIGN -> "':='"
  | EQUALS -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | GT -> "'>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | EOF -> "end of input"
