(* Abstract syntax of the Quicksilver-mini surface language.

   The paper's artifact includes a compiler for a SCOOP language
   (Quicksilver, Haskell → LLVM).  This library is its miniature: a small
   concurrent language with handlers (processors owning integer
   variables) and clients whose statements map one-to-one onto the
   runtime operations of §3 — separate blocks, asynchronous variable
   writes (calls), synchronous variable reads (queries).

   A program declares handlers and clients:

     handler account { var balance = 100; }

     client teller {
       repeat 10 {
         separate account {
           let b = account.balance;
           account.balance := b + 1;
         }
       }
     }

   Control flow (repeat / if) and arithmetic operate on client-local
   variables only; handler state is reachable solely through reserved
   registrations, which the static checker enforces — the analogue of
   SCOOP's separate type system. *)

type handler_name = string
type var_name = string

type binop = Add | Sub | Mul

type relop = Eq | Ne | Lt | Gt | Le | Ge

type expr =
  | Int of int
  | Local of var_name
  | Read of handler_name * var_name
      (* h.x — only inside a when-clause of a block reserving h *)
  | Binop of binop * expr * expr

type cond = Rel of relop * expr * expr

type stmt =
  | Separate of handler_name list * stmt list
      (* separate h1, h2 { ... } — atomic multi-reservation *)
  | Separate_when of handler_name list * cond * stmt list
      (* separate h1, h2 when c { ... } — precondition as wait condition:
         the body runs only once c holds, evaluated under the block's own
         registration (paper §2 / Nienaltowski's contract semantics) *)
  | Async_set of handler_name * var_name * expr
      (* h.x := e;  — asynchronous call; e evaluated at logging time *)
  | Query_read of var_name * handler_name * var_name
      (* let v = h.x;  — synchronous query *)
  | Local_set of var_name * expr (* local v = e;  /  v := e; *)
  | Repeat of int * stmt list
  | If of cond * stmt list * stmt list
  | Print of expr

type handler_decl = {
  h_name : handler_name;
  h_vars : (var_name * int) list; (* initial values *)
}

type client_decl = {
  c_name : string;
  c_body : stmt list;
}

type program = {
  handlers : handler_decl list;
  clients : client_decl list;
}

(* -- pretty printing -------------------------------------------------------- *)

let string_of_binop = function Add -> "+" | Sub -> "-" | Mul -> "*"

let string_of_relop = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="

let rec pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Local v -> Format.pp_print_string ppf v
  | Read (h, x) -> Format.fprintf ppf "%s.%s" h x
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (string_of_binop op) pp_expr b

let pp_cond ppf (Rel (op, a, b)) =
  Format.fprintf ppf "%a %s %a" pp_expr a (string_of_relop op) pp_expr b

let rec pp_stmt ppf = function
  | Separate (hs, body) ->
    Format.fprintf ppf "@[<v2>separate %s {%a@]@,}"
      (String.concat ", " hs) pp_body body
  | Separate_when (hs, c, body) ->
    Format.fprintf ppf "@[<v2>separate %s when %a {%a@]@,}"
      (String.concat ", " hs) pp_cond c pp_body body
  | Async_set (h, x, e) -> Format.fprintf ppf "%s.%s := %a;" h x pp_expr e
  | Query_read (v, h, x) -> Format.fprintf ppf "let %s = %s.%s;" v h x
  | Local_set (v, e) -> Format.fprintf ppf "local %s = %a;" v pp_expr e
  | Repeat (n, body) ->
    Format.fprintf ppf "@[<v2>repeat %d {%a@]@,}" n pp_body body
  | If (c, t, []) ->
    Format.fprintf ppf "@[<v2>if %a {%a@]@,}" pp_cond c pp_body t
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v2>if %a {%a@]@,} else {%a@,}" pp_cond c pp_body t
      pp_body e
  | Print e -> Format.fprintf ppf "print %a;" pp_expr e

and pp_body ppf body =
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) body

let pp_program ppf p =
  List.iter
    (fun h ->
      Format.fprintf ppf "@[<v2>handler %s {" h.h_name;
      List.iter
        (fun (v, init) -> Format.fprintf ppf "@,var %s = %d;" v init)
        h.h_vars;
      Format.fprintf ppf "@]@,}@,")
    p.handlers;
  List.iter
    (fun c ->
      Format.fprintf ppf "@[<v2>client %s {%a@]@,}@," c.c_name pp_body c.c_body)
    p.clients
