(** Compilation to the SCOOP/Qs runtime: handlers become processors,
    clients become fibers, statements map onto the runtime operations of
    paper §3. *)

type outcome = {
  finals : (string * (string * int) list) list;
      (** per handler, final variable values (sorted by name) *)
  printed : int list;  (** every [print] result, in execution order *)
}

val run :
  ?domains:int -> ?config:Scoop.Config.t -> Ast.program -> outcome
(** Check and execute a program.
    @raise Check.Check_error on static errors. *)

val parse_and_run :
  ?domains:int -> ?config:Scoop.Config.t -> string -> outcome
