(* Compilation to the SCOOP/Qs runtime: handlers become processors whose
   variable store is a shared hash table; clients become fibers; the
   statements map directly onto the runtime operations of §3:

     separate h1, h2 { ... }  ->  Runtime.separate_list (atomic reservation)
     h.x := e;                ->  Registration.call  (argument evaluated at
                                  logging time, like Fig. 9's packaged args)
     let v = h.x;             ->  Registration.query (Fig. 10)

   [run] executes a checked program and returns each handler's final
   variable values plus anything the clients printed. *)

module R = Scoop.Runtime
module Sh = Scoop.Shared

type outcome = {
  finals : (string * (string * int) list) list;
      (* per handler, final variable values *)
  printed : int list; (* every [print] result, in execution order *)
}

(* [read] resolves handler reads; outside when-clauses the checker has
   ruled them out and [read] is never consulted. *)
let eval_expr ?(read = fun h x -> ignore h; ignore x; assert false) locals e =
  let rec go = function
    | Ast.Int n -> n
    | Ast.Local v -> Hashtbl.find locals v
    | Ast.Read (h, x) -> read h x
    | Ast.Binop (op, a, b) -> (
      let x = go a and y = go b in
      match op with Ast.Add -> x + y | Ast.Sub -> x - y | Ast.Mul -> x * y)
  in
  go e

let eval_cond ?read locals (Ast.Rel (op, a, b)) =
  let x = eval_expr ?read locals a and y = eval_expr ?read locals b in
  match op with
  | Ast.Eq -> x = y
  | Ast.Ne -> x <> y
  | Ast.Lt -> x < y
  | Ast.Gt -> x > y
  | Ast.Le -> x <= y
  | Ast.Ge -> x >= y

let run ?(domains = 1) ?(config = Scoop.Config.all) (p : Ast.program) =
  Check.check_program p;
  let printed = ref [] in
  let printed_lock = Qs_queues.Spinlock.create () in
  let finals =
    R.run ~domains ~config (fun rt ->
      (* Handlers: one processor each, owning a (name -> value) table. *)
      let handlers =
        List.map
          (fun (h : Ast.handler_decl) ->
            let proc = R.processor rt in
            let store : (string, int) Hashtbl.t = Hashtbl.create 8 in
            List.iter (fun (v, init) -> Hashtbl.replace store v init) h.Ast.h_vars;
            (h.Ast.h_name, (proc, Sh.create proc store)))
          p.Ast.handlers
      in
      let latch = Qs_sched.Latch.create (List.length p.Ast.clients) in
      List.iter
        (fun (c : Ast.client_decl) ->
          Qs_sched.Sched.spawn (fun () ->
            let locals : (string, int) Hashtbl.t = Hashtbl.create 8 in
            (* Registrations currently in scope, innermost first. *)
            let rec exec regs stmts = List.iter (exec_stmt regs) stmts
            and reg_for regs h =
              (* The checker guarantees presence. *)
              List.assoc h regs
            and exec_stmt regs = function
              | Ast.Separate (hs, body) ->
                let procs = List.map (fun h -> fst (List.assoc h handlers)) hs in
                R.separate_list rt procs (fun rs ->
                  exec (List.combine hs rs @ regs) body)
              | Ast.Separate_when (hs, c, body) ->
                let procs = List.map (fun h -> fst (List.assoc h handlers)) hs in
                R.separate_list_when rt procs
                  ~pred:(fun rs ->
                    let regs' = List.combine hs rs in
                    let read h x =
                      let _, store = List.assoc h handlers in
                      Sh.get (List.assoc h regs') store (fun tbl ->
                        Hashtbl.find tbl x)
                    in
                    eval_cond ~read locals c)
                  (fun rs -> exec (List.combine hs rs @ regs) body)
              | Ast.Async_set (h, x, e) ->
                let value = eval_expr locals e in
                let _, store = List.assoc h handlers in
                Sh.apply (reg_for regs h) store (fun tbl ->
                  Hashtbl.replace tbl x value)
              | Ast.Query_read (v, h, x) ->
                let _, store = List.assoc h handlers in
                let value =
                  Sh.get (reg_for regs h) store (fun tbl -> Hashtbl.find tbl x)
                in
                Hashtbl.replace locals v value
              | Ast.Local_set (v, e) ->
                Hashtbl.replace locals v (eval_expr locals e)
              | Ast.Repeat (n, body) ->
                for _ = 1 to n do
                  exec regs body
                done
              | Ast.If (c, t, e) ->
                if eval_cond locals c then exec regs t else exec regs e
              | Ast.Print e ->
                let value = eval_expr locals e in
                Qs_queues.Spinlock.with_lock printed_lock (fun () ->
                  printed := value :: !printed)
            in
            exec [] c.Ast.c_body;
            Qs_sched.Latch.count_down latch))
        p.Ast.clients;
      Qs_sched.Latch.wait latch;
      (* Collect final handler states through ordinary queries. *)
      List.map
        (fun (name, (proc, store)) ->
          ( name,
            R.separate rt proc (fun reg ->
              Sh.get reg store (fun tbl ->
                Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
                |> List.sort compare)) ))
        handlers)
  in
  { finals; printed = List.rev !printed }

let parse_and_run ?domains ?config source =
  run ?domains ?config (Parser.program source)
