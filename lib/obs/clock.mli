(** Monotonic integer-nanosecond clock for latency stamps.

    {!now_ns} reads CLOCK_MONOTONIC through a [@@noalloc] C stub: no
    allocation per read (unlike the boxed float of [Unix.gettimeofday]),
    and differences are never negative.  The absolute value is
    nanoseconds since an arbitrary epoch (boot) — only differences are
    meaningful. *)

val now_ns : unit -> int

val ns_of_s : float -> int
(** Seconds → nanoseconds (for deadlines expressed as [float] config). *)

val s_of_ns : int -> float
(** Nanoseconds → seconds. *)
