(** Registry-based typed counters: the counting substrate shared by every
    runtime layer.

    A {!registry} owns a set of named atomic counters; {!snapshot} reads
    them all as one name→value association (registration order), and
    {!diff} attributes counts to a region of execution.  Bumping a
    counter is one atomic increment — safe from any fiber or domain. *)

type t
(** One named counter. *)

type registry

val registry : unit -> registry

val make : registry -> string -> t
(** Register a fresh counter under [name].
    @raise Invalid_argument if [name] is already registered. *)

val make_sharded : ?shards:int -> registry -> string -> t
(** Like {!make}, but the count lives in per-domain cells (default
    {!default_shards}, rounded up to a power of two), padded apart so
    concurrent bumps from different domains never contend on one cache
    line.  Use for hot-path counters bumped from every domain; {!get}
    sums the cells (racy-by-summation, like any live snapshot). *)

val default_shards : int

val name : t -> string
val get : t -> int
val incr : t -> unit
val add : t -> int -> unit

type snapshot = (string * int) list
(** Name→value view, in registration order. *)

val snapshot : registry -> snapshot

val value : snapshot -> string -> int
(** [value s name] is the count recorded under [name] ([0] if absent). *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the pointwise difference over [later]'s
    names (a name absent in [earlier] counts as [0] there). *)

val pp_snapshot : Format.formatter -> snapshot -> unit
