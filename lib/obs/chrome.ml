(* Chrome trace-event export: turn a sink's event rings into the JSON
   that chrome://tracing and https://ui.perfetto.dev load directly.

   Mapping: each category (layer) becomes one "process" so the viewer
   groups scheduler workers, processor handlers and client operations
   into separate swim-lane groups; each track becomes a "thread" within
   its layer.  Instants export as phase "i", spans as complete events
   (phase "X") with microsecond timestamps.  Counter snapshots ride along
   in "otherData" so one file carries the whole run. *)

let ( @: ) k v = (k, v)

(* Stable pid per category, in first-seen order, with process_name
   metadata so the viewer shows the layer name instead of a number. *)
let pids events =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (ev : Sink.event) ->
      if not (Hashtbl.mem tbl ev.cat) then begin
        Hashtbl.add tbl ev.cat (Hashtbl.length tbl + 1);
        order := ev.cat :: !order
      end)
    events;
  (tbl, List.rev !order)

let us seconds = Json.Float (seconds *. 1e6)

let event_json pids (ev : Sink.event) =
  let pid = Hashtbl.find pids ev.cat in
  let common =
    [
      "name" @: Json.String ev.name;
      "cat" @: Json.String ev.cat;
      "ts" @: us ev.ts;
      "pid" @: Json.Int pid;
      "tid" @: Json.Int ev.track;
    ]
  in
  let args =
    if ev.arg = 0 then []
    else [ "args" @: Json.Obj [ "v" @: Json.Int ev.arg ] ]
  in
  if ev.dur > 0.0 then
    Json.Obj (common @ [ "ph" @: Json.String "X"; "dur" @: us ev.dur ] @ args)
  else
    Json.Obj (common @ [ "ph" @: Json.String "i"; "s" @: Json.String "t" ] @ args)

let metadata_json pids cat =
  Json.Obj
    [
      "name" @: Json.String "process_name";
      "ph" @: Json.String "M";
      "pid" @: Json.Int (Hashtbl.find pids cat);
      "args" @: Json.Obj [ "name" @: Json.String cat ];
    ]

let to_json ?(counters = []) ?(histograms = []) sink =
  let events = Sink.events sink in
  let pids, cats = pids events in
  let trace_events =
    List.map (metadata_json pids) cats @ List.map (event_json pids) events
  in
  (* Latency distributions ride along as quantile summaries: the trace
     viewer ignores them, but one file then carries both the event
     timeline and the per-class latency shape of the same run. *)
  let hist_json =
    match histograms with
    | [] -> []
    | hs ->
      [
        "histograms"
        @: Json.Obj (List.map (fun (n, d) -> n @: Histogram.summary_json d) hs);
      ]
  in
  Json.Obj
    [
      "traceEvents" @: Json.List trace_events;
      "displayTimeUnit" @: Json.String "ms";
      "otherData"
      @: Json.Obj
           ([
              "recordedEvents" @: Json.Int (Sink.recorded sink);
              "droppedEvents" @: Json.Int (Sink.dropped sink);
            ]
           @ List.map (fun (name, v) -> name @: Json.Int v) counters
           @ hist_json);
    ]

let to_string ?counters ?histograms sink =
  Json.to_string (to_json ?counters ?histograms sink)

let write_file ?counters ?histograms sink file =
  Json.write_file file (to_json ?counters ?histograms sink)
