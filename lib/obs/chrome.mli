(** Chrome trace-event JSON export of a {!Sink}: loadable directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Each event category (layer) becomes one process group, each track a
    thread within it; spans export as complete events ("ph":"X"),
    instants as "ph":"i".  Optional [counters] (e.g. a
    {!Counter.snapshot}) are embedded under ["otherData"], and optional
    [histograms] (e.g. a {!Histogram.snapshot}) as quantile summaries
    under ["otherData"]["histograms"]. *)

val to_json :
  ?counters:(string * int) list ->
  ?histograms:(string * Histogram.dist) list ->
  Sink.t ->
  Json.t

val to_string :
  ?counters:(string * int) list ->
  ?histograms:(string * Histogram.dist) list ->
  Sink.t ->
  string

val write_file :
  ?counters:(string * int) list ->
  ?histograms:(string * Histogram.dist) list ->
  Sink.t ->
  string ->
  unit
