(* Registry-based typed counters — the single counting substrate for every
   layer of the runtime (paper §7: "detailed measurement of internal
   runtime components").

   A counter is an atomic cell registered under a name; a registry owns a
   set of counters and can snapshot them all as one name→value view.  The
   higher layers (Scoop.Stats, the bench JSON output) are thin views over
   these snapshots, so adding a counter anywhere in the stack is one
   [make] call — no hand-written record/snapshot/diff triplication.

   Two cell layouts share the same interface:
   - [Central]: one atomic word — right for counters bumped rarely or from
     one domain.
   - [Sharded]: per-domain cells (padded apart so they never share a cache
     line), summed on read.  Hot-path counters bumped from every domain
     (async calls, queries, handler wakeups) otherwise turn into a single
     contended line bouncing between cores — the classic statistics
     anti-pattern the sharded layout exists to kill.  Reads are O(cells)
     and racy-by-summation, which snapshots already are. *)

type cell =
  | Central of int Atomic.t
  | Sharded of padded_cell array (* length is a power of two *)

and padded_cell = {
  c : int Atomic.t;
  (* Separate heap blocks plus filler keep two cells from sharing a cache
     line (OCaml 5.1 has no [Atomic.make_contended]). *)
  _pad : int array;
}

type t = {
  name : string;
  cell : cell;
}

type registry = {
  lock : Mutex.t; (* registration is rare; bumping never locks *)
  mutable counters : t list; (* newest first *)
}

let registry () = { lock = Mutex.create (); counters = [] }

let register registry name cell =
  let t = { name; cell } in
  Mutex.lock registry.lock;
  (match List.find_opt (fun c' -> c'.name = name) registry.counters with
  | Some _ ->
    Mutex.unlock registry.lock;
    invalid_arg ("Qs_obs.Counter.make: duplicate counter " ^ name)
  | None -> ());
  registry.counters <- t :: registry.counters;
  Mutex.unlock registry.lock;
  t

let make registry name = register registry name (Central (Atomic.make 0))

(* Enough cells that the default worker counts in this repo (≤ 8 domains)
   map 1:1; more domains alias harmlessly. *)
let default_shards = 8

let make_sharded ?(shards = default_shards) registry name =
  let n =
    let rec pow2 p = if p >= max 1 shards then p else pow2 (p * 2) in
    pow2 1
  in
  register registry name
    (Sharded (Array.init n (fun _ -> { c = Atomic.make 0; _pad = Array.make 8 0 })))

let name t = t.name

let my_cell cells =
  cells.((Domain.self () :> int) land (Array.length cells - 1)).c

let get t =
  match t.cell with
  | Central c -> Atomic.get c
  | Sharded cells ->
    Array.fold_left (fun acc pc -> acc + Atomic.get pc.c) 0 cells

let incr t =
  match t.cell with
  | Central c -> Atomic.incr c
  | Sharded cells -> Atomic.incr (my_cell cells)

let add t n =
  match t.cell with
  | Central c -> ignore (Atomic.fetch_and_add c n : int)
  | Sharded cells -> ignore (Atomic.fetch_and_add (my_cell cells) n : int)

type snapshot = (string * int) list

let snapshot registry =
  Mutex.lock registry.lock;
  let counters = registry.counters in
  Mutex.unlock registry.lock;
  (* Registration order: oldest first. *)
  List.rev_map (fun c -> (c.name, get c)) counters

let value s name = Option.value ~default:0 (List.assoc_opt name s)

let diff later earlier =
  List.map (fun (name, v) -> (name, v - value earlier name)) later

let pp_snapshot ppf s =
  let width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 s
  in
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.pp_print_cut ppf ();
      Format.fprintf ppf "%-*s %d" (width + 1) (name ^ ":") v)
    s;
  Format.pp_close_box ppf ()
