(* Registry-based typed counters — the single counting substrate for every
   layer of the runtime (paper §7: "detailed measurement of internal
   runtime components").

   A counter is an atomic cell registered under a name; a registry owns a
   set of counters and can snapshot them all as one name→value view.  The
   higher layers (Scoop.Stats, the bench JSON output) are thin views over
   these snapshots, so adding a counter anywhere in the stack is one
   [make] call — no hand-written record/snapshot/diff triplication. *)

type t = {
  name : string;
  cell : int Atomic.t;
}

type registry = {
  lock : Mutex.t; (* registration is rare; bumping never locks *)
  mutable counters : t list; (* newest first *)
}

let registry () = { lock = Mutex.create (); counters = [] }

let make registry name =
  let c = { name; cell = Atomic.make 0 } in
  Mutex.lock registry.lock;
  (match List.find_opt (fun c' -> c'.name = name) registry.counters with
  | Some _ ->
    Mutex.unlock registry.lock;
    invalid_arg ("Qs_obs.Counter.make: duplicate counter " ^ name)
  | None -> ());
  registry.counters <- c :: registry.counters;
  Mutex.unlock registry.lock;
  c

let name t = t.name
let get t = Atomic.get t.cell
let incr t = Atomic.incr t.cell
let add t n = ignore (Atomic.fetch_and_add t.cell n : int)

type snapshot = (string * int) list

let snapshot registry =
  Mutex.lock registry.lock;
  let counters = registry.counters in
  Mutex.unlock registry.lock;
  (* Registration order: oldest first. *)
  List.rev_map (fun c -> (c.name, get c)) counters

let value s name = Option.value ~default:0 (List.assoc_opt name s)

let diff later earlier =
  List.map (fun (name, v) -> (name, v - value earlier name)) later

let pp_snapshot ppf s =
  let width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 s
  in
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.pp_print_cut ppf ();
      Format.fprintf ppf "%-*s %d" (width + 1) (name ^ ":") v)
    s;
  Format.pp_close_box ppf ()
