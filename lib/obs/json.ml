(* Minimal JSON emitter — enough for the Chrome trace export and the
   bench machine-readable output, with no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf
      (if Float.is_nan f then "0" else Printf.sprintf "%.0f" f)
  else if Float.abs f = Float.infinity then Buffer.add_string buf "0"
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf key;
        Buffer.add_string buf "\":";
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  to_buffer buf v;
  Buffer.contents buf

let write_file file v =
  Out_channel.with_open_text file (fun oc ->
    let buf = Buffer.create 65536 in
    to_buffer buf v;
    Out_channel.output_string oc (Buffer.contents buf);
    Out_channel.output_char oc '\n')
