(** Registry-based lock-free latency histograms: the distribution
    sibling of {!Counter}.

    A {!registry} owns named histograms; {!record} files one sample
    (integer nanoseconds) with O(1) shift/mask bucket arithmetic and one
    atomic increment on the calling domain's shard — no locks, no
    allocation after a shard's first use.  {!snapshot} reads every
    histogram as a merged {!dist} in registration order; {!merge} folds
    distributions pointwise (associative and commutative), and
    {!quantile} extracts order statistics within one bucket's relative
    error (≤ 2{^-5} ≈ 3.1% with the default bucket scheme).

    Buckets are log-linear (HdrHistogram-style): exact below
    {!sub_count}, then 2{^5} equal sub-buckets per power-of-two octave
    up to {!max_value} (~73 min in ns).  Samples beyond {!max_value} are
    counted in [dist.overflow] rather than force-fitted, so every
    recorded sample is accounted for: a quiesced read never loses more
    samples than [overflow] reports. *)

type t
(** One named histogram. *)

type registry

val registry : unit -> registry

val make : ?shards:int -> registry -> string -> t
(** Register a fresh histogram under [name] with per-domain shards
    (default {!default_shards}, rounded up to a power of two; shard
    storage is allocated lazily on a domain's first record).
    @raise Invalid_argument if [name] is already registered. *)

val default_shards : int

val name : t -> string

val record : t -> int -> unit
(** [record t v] files one sample of [v] nanoseconds (negative values
    clamp to 0; values beyond {!max_value} bump the overflow counter).
    Safe from any fiber or domain; never locks or allocates after the
    calling domain's shard exists. *)

(** {1 Bucket scheme} *)

val sub_bits : int
val sub_count : int
val buckets : int

val max_value : int
(** Largest representable sample ([2]{^42}[- 1] ns). *)

val index_of : int -> int
(** Bucket index of a value in [[0, max_value]]. *)

val bound_of_index : int -> int
(** Inclusive upper value bound of a bucket — quantile reads report
    this, so they err high by at most one bucket width. *)

(** {1 Merged distributions} *)

type dist = {
  counts : int array;  (** per-bucket sample counts, length {!buckets} *)
  total : int;  (** sum of [counts] *)
  sum : int;  (** summed sample values behind [counts] *)
  overflow : int;  (** samples beyond {!max_value}, not in [counts] *)
}

val zero : dist

val read : t -> dist
(** Merge the shards into one distribution.  Racy-by-summation like
    [Counter.get]: concurrent records may be missed (monotone lower
    bound), a quiesced read is exact. *)

val merge : dist -> dist -> dist
(** Pointwise addition — associative and commutative, with {!zero} as
    unit; also folds distributions across runtimes or processes. *)

type snapshot = (string * dist) list

val snapshot : registry -> snapshot
(** Name→distribution view of every registered histogram, in
    registration order (oldest first, like [Counter.snapshot]). *)

val dist : registry -> string -> dist
(** The named histogram's merged distribution ({!zero} if absent). *)

val quantile : dist -> float -> int
(** [quantile d q] (0 < [q] <= 1) is the upper bound of the bucket
    holding the ⌈q·total⌉-th smallest sample; [0] on an empty
    distribution.  [quantile d 1.0] bounds the recorded maximum. *)

val mean : dist -> float
(** Mean recorded value ([0.] on an empty distribution). *)

val pp_dist : Format.formatter -> dist -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit

val summary_json : dist -> Json.t
(** [{count, p50_ns, p90_ns, p99_ns, p999_ns, max_ns, mean_ns,
    overflow}] — the summary shape embedded in bench JSON and the
    Chrome trace's [otherData]. *)
