(** Minimal JSON emitter (no external dependency).  Non-finite floats are
    emitted as [0]; everything else is standard JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val write_file : string -> t -> unit
