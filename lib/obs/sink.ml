(* Per-domain bounded event rings — the event-recording half of the
   observability substrate.

   Every layer records the same event shape: a named, categorized point
   ([instant]) or duration ([complete], with an explicit start and
   duration) on a numbered track, stamped with seconds since the sink's
   epoch and a global sequence number.  Categories name the layer that
   emitted the event ("sched", "core", "client", "remote"); tracks name
   the entity within the layer (worker id, processor id).

   Storage is a table of rings sharded by domain id: recording claims a
   slot with one fetch-and-add on the ring's cursor and writes it — no
   locks, no unbounded growth (the lock-free cons list this replaces kept
   every event alive for the whole run).  A ring that wraps overwrites
   its oldest events; the overflow is counted ({!dropped}), never
   silent.  Readers ({!fold}, {!events}) must run in quiescence (after
   the traced run), since a racing writer may be mid-slot. *)

type event = {
  seq : int; (* global record order (completion order for spans) *)
  ts : float; (* seconds since the sink epoch; span start for completes *)
  dur : float; (* span duration; 0 for instants *)
  cat : string; (* emitting layer: "sched" | "core" | "client" | ... *)
  name : string;
  track : int; (* entity within the layer: worker id, processor id *)
  arg : int; (* small payload (batch size, ...); 0 when unused *)
}

type ring = {
  slots : event option array;
  cursor : int Atomic.t; (* total claims; slot = claim mod capacity *)
}

let shard_bits = 6
let shards = 1 lsl shard_bits

type t = {
  epoch : float;
  capacity : int;
  rings : ring option Atomic.t array; (* created on a domain's first record *)
  seq : int Atomic.t;
}

let default_capacity = 1 lsl 14

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Qs_obs.Sink.create: capacity must be >= 1";
  {
    epoch = Unix.gettimeofday ();
    capacity;
    rings = Array.init shards (fun _ -> Atomic.make None);
    seq = Atomic.make 0;
  }

let capacity t = t.capacity
let now t = Unix.gettimeofday () -. t.epoch

(* Domains whose ids collide modulo [shards] share a ring; the atomic
   cursor keeps sharing safe, sharding keeps it rare. *)
let ring_for t =
  let i = (Domain.self () :> int) land (shards - 1) in
  let slot = t.rings.(i) in
  match Atomic.get slot with
  | Some r -> r
  | None ->
    let r = { slots = Array.make t.capacity None; cursor = Atomic.make 0 } in
    if Atomic.compare_and_set slot None (Some r) then r
    else Option.get (Atomic.get slot)

let record t ~cat ~name ~track ?(arg = 0) ~ts ~dur () =
  let ev =
    { seq = Atomic.fetch_and_add t.seq 1; ts; dur; cat; name; track; arg }
  in
  let r = ring_for t in
  let i = Atomic.fetch_and_add r.cursor 1 in
  r.slots.(i mod t.capacity) <- Some ev

let instant t ~cat ~name ~track ?arg () =
  record t ~cat ~name ~track ?arg ~ts:(now t) ~dur:0.0 ()

let complete t ~cat ~name ~track ?arg ~ts ~dur () =
  record t ~cat ~name ~track ?arg ~ts ~dur ()

let span t ~cat ~name ~track ?arg f =
  let t0 = now t in
  Fun.protect
    ~finally:(fun () ->
      complete t ~cat ~name ~track ?arg ~ts:t0 ~dur:(now t -. t0) ())
    f

(* -- quiescent readers ------------------------------------------------------ *)

let live_rings t =
  Array.to_list t.rings
  |> List.filter_map Atomic.get

let recorded t =
  List.fold_left
    (fun acc r -> acc + min (Atomic.get r.cursor) t.capacity)
    0 (live_rings t)

let dropped t =
  List.fold_left
    (fun acc r -> acc + max 0 (Atomic.get r.cursor - t.capacity))
    0 (live_rings t)

(* Per-ring insertion order (oldest surviving first); ring visitation
   order is unspecified — use {!events} for a chronological view. *)
let fold f acc t =
  List.fold_left
    (fun acc r ->
      let claimed = Atomic.get r.cursor in
      let first = max 0 (claimed - t.capacity) in
      let acc = ref acc in
      for i = first to claimed - 1 do
        match r.slots.(i mod t.capacity) with
        | Some ev -> acc := f !acc ev
        | None -> () (* claimed but unwritten: only under a writer race *)
      done;
      !acc)
    acc (live_rings t)

(* Chronological merge of every ring.  The sort is the explicit cost of
   ordering — O(n log n) once, instead of the old [Trace.events]
   reversing its whole list on every call. *)
let events t =
  fold (fun acc ev -> ev :: acc) [] t
  |> List.sort (fun a b ->
       match Float.compare a.ts b.ts with
       | 0 -> Int.compare a.seq b.seq
       | c -> c)

let tracks t =
  let tbl = Hashtbl.create 16 in
  fold
    (fun () ev ->
      let key = (ev.cat, ev.track) in
      match Hashtbl.find_opt tbl key with
      | Some n -> Hashtbl.replace tbl key (n + 1)
      | None -> Hashtbl.replace tbl key 1)
    () t;
  Hashtbl.fold (fun (cat, track) n acc -> (cat, track, n) :: acc) tbl []
  |> List.sort compare

let pp_track_summary ppf t =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf "%-8s %6s %8s" "layer" "track" "events";
  List.iter
    (fun (cat, track, n) ->
      Format.pp_print_cut ppf ();
      Format.fprintf ppf "%-8s %6d %8d" cat track n)
    (tracks t);
  (match dropped t with
  | 0 -> ()
  | d ->
    Format.pp_print_cut ppf ();
    Format.fprintf ppf "(%d events dropped on ring overflow)" d);
  Format.pp_close_box ppf ()
