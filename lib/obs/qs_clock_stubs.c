/* Monotonic nanosecond clock for latency stamps.

   The request hot path stamps birth/admitted/served/completed times on
   every request, so the clock read must (a) never allocate — a boxed
   float return from Unix.gettimeofday would put ~3 minor words back on
   the zero-allocation pooled path — and (b) be monotonic, so a latency
   is never negative across an NTP step.  CLOCK_MONOTONIC nanoseconds
   since boot fit comfortably in a 63-bit OCaml int (~146 years), so the
   stub returns an immediate value and is [@@noalloc]. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value qs_obs_clock_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
