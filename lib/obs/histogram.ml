(* Registry-based lock-free latency histograms — the distribution
   sibling of [Counter] (HdrHistogram-style log-linear buckets).

   A histogram is a set of per-domain shards registered under a name in
   a registry; [record] is O(1) and allocation-free after a shard's
   first use: compute the bucket index with shift/mask arithmetic, then
   one [Atomic.incr] on the calling domain's shard (plus one
   fetch-and-add for the value sum).  Nothing is ever locked on the
   record path and shards are separate heap arrays, so concurrent
   recorders from different domains never contend on one cache line —
   the same discipline as [Counter]'s sharded cells.

   Bucket scheme (log-linear, like HdrHistogram): values below
   [sub_count = 2^sub_bits] get one bucket each (exact); above that,
   each power-of-two octave is split into [sub_count] equal-width
   sub-buckets, so the relative width of any bucket is at most
   [2^-sub_bits] (~3.1% with the default 5 sub-bucket bits).  A
   quantile read is therefore within one bucket's relative error of the
   exact order statistic.  Values beyond [max_value] (~73 minutes in
   nanoseconds) are not force-fitted into the top bucket: they bump a
   counted [overflow] cell instead, so a snapshot can always account
   for every sample it is missing from the buckets.

   Snapshots are racy-by-summation, exactly like [Counter.get]: a
   [read] while other domains record may miss increments still in
   flight, but every record lands in exactly one atomic cell, so a
   quiesced read accounts for every sample and a concurrent read is a
   monotone lower bound.  [snapshot] walks the registry in registration
   order; [merge] is pointwise addition (associative, commutative),
   which also folds multi-runtime or multi-process distributions. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 sub-buckets per octave *)

(* Highest tracked power: values in [2^41, 2^42) land in the top
   octave; [max_value] is the largest representable sample. *)
let max_msb = 41
let max_value = (1 lsl (max_msb + 1)) - 1

(* msb 0..62 of a positive int, by binary search (6 branches, no loop
   proportional to the value). *)
let msb v =
  let n = 0 in
  let n, v = if v lsr 32 <> 0 then (n + 32, v lsr 32) else (n, v) in
  let n, v = if v lsr 16 <> 0 then (n + 16, v lsr 16) else (n, v) in
  let n, v = if v lsr 8 <> 0 then (n + 8, v lsr 8) else (n, v) in
  let n, v = if v lsr 4 <> 0 then (n + 4, v lsr 4) else (n, v) in
  let n, v = if v lsr 2 <> 0 then (n + 2, v lsr 2) else (n, v) in
  if v lsr 1 <> 0 then n + 1 else n

(* Bucket index of a value in [0, max_value]: identity in the linear
   region, then octave [k] (the [k]-th power past the linear region)
   occupies indices [k*sub_count .. (k+1)*sub_count - 1]. *)
let index_of v =
  if v < sub_count then v
  else
    let m = msb v in
    let k = m - sub_bits + 1 in
    (k * sub_count) + ((v lsr (m - sub_bits)) - sub_count)

let buckets = index_of max_value + 1

(* Inclusive upper bound of bucket [i] — the value a quantile read
   reports, so reads err high by at most one bucket width. *)
let bound_of_index i =
  if i < sub_count then i
  else
    let k = i lsr sub_bits in
    let low = i land (sub_count - 1) in
    (((low + sub_count) lsl (k - 1)) + (1 lsl (k - 1))) - 1

type shard = {
  cts : int Atomic.t array; (* length [buckets] *)
  vsum : int Atomic.t; (* summed recorded values (excluding overflow) *)
  over : int Atomic.t; (* samples beyond [max_value] *)
}

type t = {
  name : string;
  shards : shard option Atomic.t array; (* length is a power of two *)
}

type registry = {
  lock : Mutex.t; (* registration is rare; recording never locks *)
  mutable hists : t list; (* newest first *)
}

let registry () = { lock = Mutex.create (); hists = [] }

let default_shards = Counter.default_shards

let make ?(shards = default_shards) registry name =
  let n =
    let rec pow2 p = if p >= max 1 shards then p else pow2 (p * 2) in
    pow2 1
  in
  let t = { name; shards = Array.init n (fun _ -> Atomic.make None) } in
  Mutex.lock registry.lock;
  (match List.find_opt (fun t' -> t'.name = name) registry.hists with
  | Some _ ->
    Mutex.unlock registry.lock;
    invalid_arg ("Qs_obs.Histogram.make: duplicate histogram " ^ name)
  | None -> ());
  registry.hists <- t :: registry.hists;
  Mutex.unlock registry.lock;
  t

let name t = t.name

let fresh_shard () =
  {
    cts = Array.init buckets (fun _ -> Atomic.make 0);
    vsum = Atomic.make 0;
    over = Atomic.make 0;
  }

(* The calling domain's shard, allocated on its first record (a
   histogram that is registered but never recorded from some domain
   costs [n] one-word cells, not [n * buckets]).  The CAS publishes the
   array; a losing racer just uses the winner's. *)
let my_shard t =
  let slot = t.shards.((Domain.self () :> int) land (Array.length t.shards - 1)) in
  match Atomic.get slot with
  | Some s -> s
  | None ->
    let s = fresh_shard () in
    if Atomic.compare_and_set slot None (Some s) then s
    else (match Atomic.get slot with Some s -> s | None -> assert false)

let record t v =
  let s = my_shard t in
  if v > max_value then Atomic.incr s.over
  else begin
    let v = if v < 0 then 0 else v in
    Atomic.incr s.cts.(index_of v);
    ignore (Atomic.fetch_and_add s.vsum v : int)
  end

(* -- Merged distributions -------------------------------------------------- *)

type dist = {
  counts : int array; (* per-bucket sample counts, length [buckets] *)
  total : int; (* sum of [counts] *)
  sum : int; (* summed sample values behind [counts] *)
  overflow : int; (* samples beyond [max_value], not in [counts] *)
}

let zero =
  { counts = Array.make buckets 0; total = 0; sum = 0; overflow = 0 }

let read t =
  let counts = Array.make buckets 0 in
  let total = ref 0 and sum = ref 0 and overflow = ref 0 in
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | None -> ()
      | Some s ->
        for i = 0 to buckets - 1 do
          let c = Atomic.get s.cts.(i) in
          if c <> 0 then begin
            counts.(i) <- counts.(i) + c;
            total := !total + c
          end
        done;
        sum := !sum + Atomic.get s.vsum;
        overflow := !overflow + Atomic.get s.over)
    t.shards;
  { counts; total = !total; sum = !sum; overflow = !overflow }

let merge a b =
  {
    counts = Array.init buckets (fun i -> a.counts.(i) + b.counts.(i));
    total = a.total + b.total;
    sum = a.sum + b.sum;
    overflow = a.overflow + b.overflow;
  }

type snapshot = (string * dist) list

let snapshot registry =
  Mutex.lock registry.lock;
  let hists = registry.hists in
  Mutex.unlock registry.lock;
  (* Registration order: oldest first (like [Counter.snapshot]). *)
  List.rev_map (fun t -> (t.name, read t)) hists

let dist registry name =
  Option.value ~default:zero (List.assoc_opt name (snapshot registry))

(* Quantile 0.0 < q <= 1.0: the upper bound of the bucket holding the
   ceil(q * total)-th smallest sample (so [quantile d 1.0] bounds the
   maximum recorded sample from above, within one bucket width). *)
let quantile d q =
  if d.total = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int d.total)) in
      if r < 1 then 1 else if r > d.total then d.total else r
    in
    let rec walk i seen =
      let seen = seen + d.counts.(i) in
      if seen >= rank || i = buckets - 1 then bound_of_index i
      else walk (i + 1) seen
    in
    walk 0 0
  end

let mean d =
  if d.total = 0 then 0.0 else float_of_int d.sum /. float_of_int d.total

let pp_dist ppf d =
  Format.fprintf ppf
    "n=%d p50=%dns p99=%dns p999=%dns max<=%dns mean=%.0fns overflow=%d"
    d.total (quantile d 0.5) (quantile d 0.99) (quantile d 0.999)
    (quantile d 1.0) (mean d) d.overflow

let pp_snapshot ppf s =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i (name, d) ->
      if i > 0 then Format.pp_print_cut ppf ();
      Format.fprintf ppf "%s: %a" name pp_dist d)
    s;
  Format.pp_close_box ppf ()

(* Machine-readable summary: the shape embedded in bench JSON and the
   Chrome trace's otherData. *)
let summary_json d =
  Json.Obj
    [
      ("count", Json.Int d.total);
      ("p50_ns", Json.Int (quantile d 0.5));
      ("p90_ns", Json.Int (quantile d 0.9));
      ("p99_ns", Json.Int (quantile d 0.99));
      ("p999_ns", Json.Int (quantile d 0.999));
      ("max_ns", Json.Int (quantile d 1.0));
      ("mean_ns", Json.Float (mean d));
      ("overflow", Json.Int d.overflow);
    ]
