(* Monotonic integer-nanosecond clock.

   The one clock the latency-accounting path reads: a C stub over
   CLOCK_MONOTONIC returning an immediate OCaml int, so stamping a
   timestamp on the request hot path costs one vDSO call and zero
   allocation (the boxed-float return of [Unix.gettimeofday] would cost
   ~3 minor words per read, which the pooled flat request path cannot
   afford).  Monotonicity also means a latency difference can never go
   negative across a wall-clock step. *)

external now_ns : unit -> int = "qs_obs_clock_now_ns" [@@noalloc]

let ns_of_s s = int_of_float (s *. 1e9)
let s_of_ns ns = float_of_int ns *. 1e-9
