(** Per-domain bounded event rings: the event-recording substrate every
    runtime layer shares.

    Recording is lock-free (one fetch-and-add per event) and bounded: a
    sink holds one ring per domain shard, each of {!capacity} slots; a
    ring that wraps overwrites its oldest events and the overflow is
    counted in {!dropped}, never silently.  Readers ({!fold}, {!events},
    {!recorded}) must run in quiescence — after the traced run — since a
    racing writer may be mid-slot. *)

type event = {
  seq : int;  (** global record order (completion order for spans) *)
  ts : float;  (** seconds since the sink epoch; span {e start} for spans *)
  dur : float;  (** span duration; [0.] for instants *)
  cat : string;  (** emitting layer: ["sched"], ["core"], ["client"], ... *)
  name : string;
  track : int;  (** entity within the layer: worker id, processor id *)
  arg : int;  (** small payload (batch size, ...); [0] when unused *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds each per-domain ring (default [16384] events).
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val now : t -> float
(** Seconds since the sink was created. *)

val instant : t -> cat:string -> name:string -> track:int -> ?arg:int -> unit -> unit

val complete :
  t -> cat:string -> name:string -> track:int -> ?arg:int -> ts:float ->
  dur:float -> unit -> unit
(** Record a span that started at [ts] (a {!now} reading) and lasted
    [dur] seconds. *)

val span :
  t -> cat:string -> name:string -> track:int -> ?arg:int -> (unit -> 'a) -> 'a
(** Run the thunk and record it as a complete span (also on exception). *)

val recorded : t -> int
(** Events currently retained across all rings. *)

val dropped : t -> int
(** Events lost to ring overflow (oldest-overwritten), across all rings. *)

val fold : ('a -> event -> 'a) -> 'a -> t -> 'a
(** Cheap iteration: per-ring insertion order, ring order unspecified.
    Use {!events} when chronology matters. *)

val events : t -> event list
(** All retained events merged chronologically (by [ts], ties by [seq]).
    The sort is the explicit cost of ordering: O(n log n) per call. *)

val tracks : t -> (string * int * int) list
(** [(cat, track, events recorded)] per track, sorted. *)

val pp_track_summary : Format.formatter -> t -> unit
