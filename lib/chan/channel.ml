(* Go-style channels over scheduler fibers.

   The comparator substrate for the paper's Go benchmarks (§5, Table 3:
   shared memory, goroutines + channels).  Buffered channels block senders
   at capacity; capacity 0 gives rendezvous semantics (a send completes
   only once a receiver has taken the value, as in Go's unbuffered
   channels).  Closing wakes everyone; receiving from a closed, drained
   channel yields [None]; sending on a closed channel raises. *)

exception Closed

type 'a t = {
  capacity : int; (* 0 = rendezvous *)
  mutex : Qs_sched.Fiber_mutex.t;
  not_empty : Qs_sched.Fiber_cond.t;
  not_full : Qs_sched.Fiber_cond.t;
  buffer : 'a Queue.t;
  mutable taken : int; (* receives completed; rendezvous bookkeeping *)
  mutable closed : bool;
}

let create ?(capacity = 0) () =
  if capacity < 0 then invalid_arg "Channel.create: negative capacity";
  {
    capacity;
    mutex = Qs_sched.Fiber_mutex.create ();
    not_empty = Qs_sched.Fiber_cond.create ();
    not_full = Qs_sched.Fiber_cond.create ();
    buffer = Queue.create ();
    taken = 0;
    closed = false;
  }

let send t v =
  Qs_sched.Fiber_mutex.lock t.mutex;
  let limit = max t.capacity 1 in
  while (not t.closed) && Queue.length t.buffer >= limit do
    Qs_sched.Fiber_cond.wait t.not_full t.mutex
  done;
  if t.closed then begin
    Qs_sched.Fiber_mutex.unlock t.mutex;
    raise Closed
  end;
  Queue.push v t.buffer;
  Qs_sched.Fiber_cond.signal t.not_empty;
  if t.capacity = 0 then begin
    (* Rendezvous: wait until a receiver has taken this element (any
       receiver completing unblocks the oldest sender, which matches the
       FIFO pairing of Go's unbuffered channels).  If the channel closes
       first and the element was never taken, the send did not happen:
       raise, as Go panics on send-on-closed. *)
    let target = t.taken + Queue.length t.buffer in
    while (not t.closed) && t.taken < target do
      Qs_sched.Fiber_cond.wait t.not_full t.mutex
    done;
    let delivered = t.taken >= target in
    Qs_sched.Fiber_mutex.unlock t.mutex;
    if not delivered then raise Closed
  end
  else Qs_sched.Fiber_mutex.unlock t.mutex

let recv_opt t =
  Qs_sched.Fiber_mutex.lock t.mutex;
  while (not t.closed) && Queue.is_empty t.buffer do
    Qs_sched.Fiber_cond.wait t.not_empty t.mutex
  done;
  let result =
    match Queue.take_opt t.buffer with
    | Some v ->
      t.taken <- t.taken + 1;
      (* Wake a sender blocked on a full buffer or on rendezvous. *)
      Qs_sched.Fiber_cond.broadcast t.not_full;
      Some v
    | None -> None (* closed and drained *)
  in
  Qs_sched.Fiber_mutex.unlock t.mutex;
  result

let recv t =
  match recv_opt t with
  | Some v -> v
  | None -> raise Closed

let try_recv t =
  Qs_sched.Fiber_mutex.lock t.mutex;
  let result =
    match Queue.take_opt t.buffer with
    | Some v ->
      t.taken <- t.taken + 1;
      Qs_sched.Fiber_cond.broadcast t.not_full;
      Some v
    | None -> None
  in
  Qs_sched.Fiber_mutex.unlock t.mutex;
  result

let close t =
  Qs_sched.Fiber_mutex.lock t.mutex;
  t.closed <- true;
  Qs_sched.Fiber_cond.broadcast t.not_empty;
  Qs_sched.Fiber_cond.broadcast t.not_full;
  Qs_sched.Fiber_mutex.unlock t.mutex

let is_closed t = t.closed

(* Goroutine-flavoured helpers. *)
let go = Qs_sched.Sched.spawn

module Wait_group = struct
  type t = {
    mutable latch : Qs_sched.Latch.t;
  }

  let create n = { latch = Qs_sched.Latch.create n }
  let done_ t = Qs_sched.Latch.count_down t.latch
  let wait t = Qs_sched.Latch.wait t.latch
end
