(** Go-style channels over fibers (the Go comparator of the paper's §5
    comparison).

    [capacity 0] (the default) is an unbuffered, rendezvous channel;
    positive capacities buffer that many elements before senders block. *)

exception Closed

type 'a t

val create : ?capacity:int -> unit -> 'a t

val send : 'a t -> 'a -> unit
(** Blocks while the buffer is full (or, unbuffered, until a receiver
    takes the value).  @raise Closed if the channel is closed. *)

val recv : 'a t -> 'a
(** Blocks while empty.  @raise Closed once closed and drained. *)

val recv_opt : 'a t -> 'a option
(** Like {!recv} but [None] once closed and drained. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val close : 'a t -> unit
val is_closed : 'a t -> bool

val go : (unit -> unit) -> unit
(** Alias for {!Qs_sched.Sched.spawn}. *)

module Wait_group : sig
  type t

  val create : int -> t
  val done_ : t -> unit
  val wait : t -> unit
end
