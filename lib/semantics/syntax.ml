(* Abstract syntax of the SCOOP/Qs operational semantics (paper §2.3).

   s ::= separate x s | call(x, f) | query(x, f)
       | wait h | release h | end | skip

   plus [Atom], which models a local primitive instruction (assignment,
   local computation) carrying an observable action name, and [QueryExec],
   an internal form produced by the modified query rule of §3.2 (the query
   body runs on the client after synchronization).  [CallEnd] is the
   [call(x, end)] the separate rule appends at the end of a block.

   [CallFail] models the failure-aware request path: an asynchronous
   call whose body raises on the handler.  Logging it produces a [Fail]
   queue item; serving a [Fail] marks the handler dirty for that client
   (SCOOP's dirty-processor rule), and the dirt surfaces as a [Raised]
   transition at the client's next sync point (see [Step]).

   [QueryTimeout] models a blocking query issued under a deadline: the
   body and release marker are logged exactly like a plain query (the
   handler executes the body regardless), but the client waits with the
   abandonable [WaitT] form, which admits a [TimedOut] transition — the
   client gives up the rendezvous without poisoning anything, and the
   handler's eventual release is discharged silently (see [Step]). *)

type hid = int
(** Handler identity. *)

type action = string
(** Observable action name, recorded in traces. *)

type stmt =
  | Skip
  | End (* end-of-private-queue marker, as a queue item *)
  | Atom of action (* local instruction *)
  | Separate of hid list * stmt (* generalized separate block (§2.4) *)
  | Call of hid * action (* asynchronous call on a handler *)
  | CallEnd of hid (* call(x, end): close registration on x *)
  | Query of hid * action (* synchronous query on a handler *)
  | QueryTimeout of hid * action (* synchronous query under a deadline *)
  | Wait of hid
  | WaitT of hid (* internal: abandonable wait (deadline running) *)
  | Release of hid
  | QueryExec of hid * action (* internal: client-side query body (§3.2) *)
  | CallFail of hid * action (* asynchronous call whose body fails *)
  | Fail of action (* failing instruction, as a queue item *)
  | Seq of stmt * stmt

let rec seq = function
  | [] -> Skip
  | [ s ] -> s
  | s :: rest -> Seq (s, seq rest)

(* Handlers mentioned anywhere in a statement. *)
let rec handlers_of = function
  | Skip | End | Atom _ | Fail _ -> []
  | Separate (xs, s) -> xs @ handlers_of s
  | Call (x, _) | CallEnd x | Query (x, _) | QueryTimeout (x, _) | Wait x
  | WaitT x | Release x | QueryExec (x, _) | CallFail (x, _) ->
    [ x ]
  | Seq (a, b) -> handlers_of a @ handlers_of b

let rec pp ppf = function
  | Skip -> Format.pp_print_string ppf "skip"
  | End -> Format.pp_print_string ppf "end"
  | Atom a -> Format.fprintf ppf "atom(%s)" a
  | Separate (xs, s) ->
    Format.fprintf ppf "separate %a {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      xs pp s
  | Call (x, a) -> Format.fprintf ppf "call(%d,%s)" x a
  | CallEnd x -> Format.fprintf ppf "call(%d,end)" x
  | Query (x, a) -> Format.fprintf ppf "query(%d,%s)" x a
  | QueryTimeout (x, a) -> Format.fprintf ppf "query_t(%d,%s)" x a
  | Wait x -> Format.fprintf ppf "wait %d" x
  | WaitT x -> Format.fprintf ppf "wait_t %d" x
  | Release x -> Format.fprintf ppf "release %d" x
  | QueryExec (x, a) -> Format.fprintf ppf "qexec(%d,%s)" x a
  | CallFail (x, a) -> Format.fprintf ppf "call_fail(%d,%s)" x a
  | Fail a -> Format.fprintf ppf "fail(%s)" a
  | Seq (a, b) -> Format.fprintf ppf "%a; %a" pp a pp b
