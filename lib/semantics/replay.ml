(* Trace conformance checking (see replay.mli).

   One tiny automaton per processor id, driven over the merged event
   stream in observed order.  The state is the client-side view of the
   request log: how many calls were logged, how many the handler is
   known to have executed, and whether the synced status currently
   holds.  The two checked properties are the ones the pooled flat
   request path and the dynamic sync elision could plausibly break:

   - execution order: a handler must never execute more calls than were
     logged (a recycled record served twice, or served before its
     enqueue, would show up here);
   - elision legality: a skipped sync round trip must coincide with the
     synced state — an earlier Synced/Pipelined event with no Logged
     event in between (the watermark rule of §3.4.1). *)

type event =
  | Reserved of int
  | Logged of int
  | Executed of int
  | Synced of int
  | Pipelined of int
  | Elided of int

let pp_event ppf = function
  | Reserved p -> Format.fprintf ppf "reserved(%d)" p
  | Logged p -> Format.fprintf ppf "logged(%d)" p
  | Executed p -> Format.fprintf ppf "executed(%d)" p
  | Synced p -> Format.fprintf ppf "synced(%d)" p
  | Pipelined p -> Format.fprintf ppf "pipelined(%d)" p
  | Elided p -> Format.fprintf ppf "elided(%d)" p

type violation = { index : int; event : event; reason : string }

let pp_violation ppf v =
  Format.fprintf ppf "event %d (%a): %s" v.index pp_event v.event v.reason

type proc_state = {
  mutable logged : int;
  mutable executed : int;
  mutable synced : bool;
}

let proc_of = function
  | Reserved p | Logged p | Executed p | Synced p | Pipelined p | Elided p -> p

let check_all events =
  let procs : (int, proc_state) Hashtbl.t = Hashtbl.create 8 in
  let state p =
    match Hashtbl.find_opt procs p with
    | Some s -> s
    | None ->
      (* A fresh processor has an empty, drained log; it is not in the
         synced state (no round trip has told the client anything). *)
      let s = { logged = 0; executed = 0; synced = false } in
      Hashtbl.add procs p s;
      s
  in
  let violations = ref [] in
  List.iteri
    (fun index event ->
      let s = state (proc_of event) in
      match event with
      | Reserved _ -> ()
      | Logged _ ->
        s.logged <- s.logged + 1;
        s.synced <- false
      | Executed _ ->
        if s.executed >= s.logged then
          violations :=
            {
              index;
              event;
              reason =
                Printf.sprintf
                  "execution before logging: %d calls executed but only %d \
                   logged"
                  (s.executed + 1) s.logged;
            }
            :: !violations
          (* clamp: do not let one spurious execution cascade *)
        else s.executed <- s.executed + 1
      | Synced _ | Pipelined _ ->
        s.executed <- s.logged;
        s.synced <- true
      | Elided _ ->
        if not s.synced then
          violations :=
            {
              index;
              event;
              reason =
                "sync elided outside the synced state (no prior round trip, \
                 or a call was logged since)";
            }
            :: !violations)
    events;
  List.rev !violations

let check events =
  match check_all events with [] -> Ok () | vs -> Error vs
