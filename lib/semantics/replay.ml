(* Trace conformance checking (see replay.mli).

   One tiny automaton per processor id, driven over the merged event
   stream in observed order.  The state is the client-side view of the
   request log: how many calls were logged, how many the handler is
   known to have executed or shed, whether the synced status currently
   holds, and whether the registration is dirty (a failure completion
   was delivered — poison — or a request was shed).  The checked
   properties are the ones the pooled flat request path, the dynamic
   sync elision and the PR 4–5 failure paths could plausibly break:

   - execution order: a handler must never execute more calls than were
     logged minus those shed (a recycled record served twice, served
     before its enqueue, or served after having been shed, shows up
     here);
   - shed accounting: a shed must consume a logged-but-unexecuted slot;
   - elision legality: a skipped sync round trip must coincide with the
     synced state on a clean registration — an elision on a dirty
     (poisoned) registration would swallow the pending failure. *)

type event =
  | Reserved of int
  | Logged of int
  | Executed of int
  | Synced of int
  | Pipelined of int
  | Elided of int
  | TimedOut of int
  | Shed of int
  | Poisoned of int

let pp_event ppf = function
  | Reserved p -> Format.fprintf ppf "reserved(%d)" p
  | Logged p -> Format.fprintf ppf "logged(%d)" p
  | Executed p -> Format.fprintf ppf "executed(%d)" p
  | Synced p -> Format.fprintf ppf "synced(%d)" p
  | Pipelined p -> Format.fprintf ppf "pipelined(%d)" p
  | Elided p -> Format.fprintf ppf "elided(%d)" p
  | TimedOut p -> Format.fprintf ppf "timed_out(%d)" p
  | Shed p -> Format.fprintf ppf "shed(%d)" p
  | Poisoned p -> Format.fprintf ppf "poisoned(%d)" p

type violation = { index : int; event : event; reason : string }

let pp_violation ppf v =
  Format.fprintf ppf "event %d (%a): %s" v.index pp_event v.event v.reason

type proc_state = {
  mutable logged : int;
  mutable executed : int;
  mutable shed : int;
  mutable synced : bool;
  mutable dirty : bool;
}

let proc_of = function
  | Reserved p | Logged p | Executed p | Synced p | Pipelined p | Elided p
  | TimedOut p | Shed p | Poisoned p ->
    p

let check_all events =
  let procs : (int, proc_state) Hashtbl.t = Hashtbl.create 8 in
  let state p =
    match Hashtbl.find_opt procs p with
    | Some s -> s
    | None ->
      (* A fresh processor has an empty, drained log; it is not in the
         synced state (no round trip has told the client anything). *)
      let s =
        { logged = 0; executed = 0; shed = 0; synced = false; dirty = false }
      in
      Hashtbl.add procs p s;
      s
  in
  let violations = ref [] in
  let fail index event reason = violations := { index; event; reason } :: !violations in
  List.iteri
    (fun index event ->
      let s = state (proc_of event) in
      match event with
      | Reserved _ ->
        (* A new registration starts clean and unsynced; the log
           watermarks are cumulative across sequential registrations
           (each one drains its own slice). *)
        s.synced <- false;
        s.dirty <- false
      | Logged _ ->
        s.logged <- s.logged + 1;
        s.synced <- false
      | Executed _ ->
        if s.executed + s.shed >= s.logged then
          fail index event
            (Printf.sprintf
               "execution before logging: %d calls accounted (%d executed + \
                %d shed) but only %d logged"
               (s.executed + s.shed + 1) (s.executed + 1) s.shed s.logged)
          (* clamp: do not let one spurious execution cascade *)
        else s.executed <- s.executed + 1
      | Shed _ ->
        (* A shed consumes a logged-but-unexecuted slot; the failure
           completion poisons the registration. *)
        if s.executed + s.shed >= s.logged then
          fail index event
            (Printf.sprintf
               "shed without a pending logged call: %d accounted (%d \
                executed + %d shed) but only %d logged"
               (s.executed + s.shed + 1) s.executed (s.shed + 1) s.logged)
        else s.shed <- s.shed + 1;
        s.dirty <- true;
        s.synced <- false
      | Poisoned _ ->
        (* A failure completion was delivered: the registration is dirty
           until the failure is raised (which the runtime does at the
           next operation, sync point or block exit). *)
        s.dirty <- true;
        s.synced <- false
      | TimedOut _ ->
        (* The rendezvous was abandoned: the round trip did not
           complete, so nothing is learned about the log — in
           particular the synced state is not established. *)
        ()
      | Synced _ ->
        (* The round trip completed: the handler necessarily drained
           everything logged before it (shed requests were consumed
           without executing), and nothing logged after it can precede
           this event — a sync completion is keyed after every covered
           execution. *)
        s.executed <- max s.executed (s.logged - s.shed);
        s.synced <- true
      | Pipelined _ ->
        (* A pipelined fulfilment proves draining only up to the query's
           *issue* point, which the event stream does not mark: calls
           logged between issue and fulfilment legitimately precede this
           event while still unexecuted, so the executed watermark must
           not be clamped here.  The synced state is established — the
           runtime only counts the force as a sync when its logged
           watermark is unchanged since issue. *)
        s.synced <- true
      | Elided _ ->
        if s.dirty then
          fail index event
            "sync elided on a dirty (poisoned) registration: the elision \
             would swallow the pending failure"
        else if not s.synced then
          fail index event
            "sync elided outside the synced state (no prior round trip, or \
             a call was logged since)")
    events;
  List.rev !violations

let check events =
  match check_all events with [] -> Ok () | vs -> Error vs
