(* Checkers for the SCOOP reasoning guarantees (paper §2.2) over complete
   runs produced by [Explore.runs].

   Guarantee 1 (local instructions are immediate and synchronous) holds by
   construction of the semantics; what must be verified on executions is
   Guarantee 2, which we split into two machine-checkable properties of a
   run's label sequence:

   - ORDER: for every client/handler pair, the actions executed on the
     handler on behalf of the client form exactly the sequence the client
     logged (same actions, same order).

   - NON-INTERLEAVING: on every handler, the executions between two
     consecutive end-of-registration events all belong to a single client
     (a handler serves one private queue at a time). *)

type violation = {
  reason : string;
  at : int; (* index in the label list *)
}

let pp_violation ppf v = Format.fprintf ppf "at label %d: %s" v.at v.reason

let check_run (labels : Step.label list) =
  let logged : (Syntax.hid * Syntax.hid, Syntax.action Queue.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let serving : (Syntax.hid, Syntax.hid) Hashtbl.t = Hashtbl.create 16 in
  let error = ref None in
  let fail at reason = if !error = None then error := Some { reason; at } in
  let logged_queue key =
    match Hashtbl.find_opt logged key with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace logged key q;
      q
  in
  List.iteri
    (fun at label ->
      match label with
      | Step.Logged { client; target; action } ->
        Queue.push action (logged_queue (client, target))
      | Step.Executed { handler; client = Some client; action } -> (
        (match Hashtbl.find_opt serving handler with
        | Some c when c <> client ->
          fail at
            (Printf.sprintf
               "handler %d interleaved client %d into client %d's registration"
               handler client c)
        | _ -> Hashtbl.replace serving handler client);
        let q = logged_queue (client, handler) in
        match Queue.take_opt q with
        | None ->
          fail at
            (Printf.sprintf "handler %d executed unlogged action %s" handler
               action)
        | Some expected when expected <> action ->
          fail at
            (Printf.sprintf
               "handler %d executed %s but client %d logged %s first" handler
               action client expected)
        | Some _ -> ())
      | Step.Failed { handler; client; action }
      | Step.Shed { handler; client; action } -> (
        (* A failing or shed call still occupies its slot in the logged
           order: ORDER and NON-INTERLEAVING constrain it exactly like a
           successful execution (the runtime fails the request's
           completion in place of running it). *)
        (match Hashtbl.find_opt serving handler with
        | Some c when c <> client ->
          fail at
            (Printf.sprintf
               "handler %d interleaved client %d into client %d's registration"
               handler client c)
        | _ -> Hashtbl.replace serving handler client);
        let q = logged_queue (client, handler) in
        match Queue.take_opt q with
        | None ->
          fail at
            (Printf.sprintf "handler %d failed unlogged action %s" handler
               action)
        | Some expected when expected <> action ->
          fail at
            (Printf.sprintf
               "handler %d failed %s but client %d logged %s first" handler
               action client expected)
        | Some _ -> ())
      | Step.EndServed { handler; client }
      | Step.Poisoned { handler; client; action = _ } -> (
        match Hashtbl.find_opt serving handler with
        | Some c when c <> client ->
          fail at
            (Printf.sprintf
               "handler %d closed registration of %d while serving %d" handler
               client c)
        | _ -> Hashtbl.remove serving handler)
      | Step.Executed { client = None; _ }
      | Step.Reserved _ | Step.Synced _ | Step.Raised _ | Step.TimedOut _
      | Step.Stepped _ ->
        ())
    labels;
  match !error with
  | Some v -> Error v
  | None -> Ok ()

(* FIFO service: a handler serves registrations in the order they were
   inserted into its queue of queues ("they are inserted and removed in
   first-in-first-out order", §2.3).  On a run's labels: per handler, the
   sequence of EndServed clients must be a prefix-wise match of the
   sequence of Reserved clients. *)
let check_fifo_service (labels : Step.label list) =
  let pending : (Syntax.hid, Syntax.hid Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let queue_for h =
    match Hashtbl.find_opt pending h with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace pending h q;
      q
  in
  let error = ref None in
  List.iteri
    (fun at label ->
      if !error = None then
        match label with
        | Step.Reserved { client; targets } ->
          List.iter (fun h -> Queue.push client (queue_for h)) targets
        | Step.EndServed { handler; client }
        | Step.Poisoned { handler; client; action = _ } -> (
          match Queue.take_opt (queue_for handler) with
          | Some expected when expected = client -> ()
          | Some expected ->
            error :=
              Some
                {
                  reason =
                    Printf.sprintf
                      "handler %d finished client %d before client %d, \
                       violating FIFO registration order"
                      handler client expected;
                  at;
                }
          | None ->
            error :=
              Some
                {
                  reason =
                    Printf.sprintf
                      "handler %d finished a registration of client %d that \
                       was never made" handler client;
                  at;
                })
        | _ -> ())
    labels;
  match !error with Some v -> Error v | None -> Ok ()

(* Check every complete run of a program (bounded); returns the first
   violating run if any.  The result is a record so that truncation can
   never be silently positionally discarded: a caller claiming the
   guarantee was checked exhaustively must consult [exhaustive]. *)
type report = {
  violation : (Explore.run * violation) option;
  runs : int;
  truncated : bool;
}

let exhaustive r = not r.truncated

let check_program ?max_runs ?max_depth mode init =
  let all, truncated = Explore.runs ?max_runs ?max_depth mode init in
  let violation =
    List.find_map
      (fun (r : Explore.run) ->
        match check_run r.labels with
        | Ok () -> None
        | Error v -> Some (r, v))
      all
  in
  { violation; runs = List.length all; truncated }
