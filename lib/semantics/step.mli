(** Small-step transition relation of the SCOOP semantics family.

    [mode] selects the rule set:
    - {!qs}: the SCOOP/Qs rules exactly as published (Fig. 3 + §2.4);
    - {!qs_client_exec}: with the modified query rule of §3.2 (the query
      body runs on the client after synchronization);
    - {!original}: the lock-based original SCOOP semantics, where a
      separate block owns its handlers exclusively (Fig. 2) — used to
      reproduce the §2.5 deadlock comparison. *)

type mode = {
  lock_based : bool;
  client_exec : bool;
}

val qs : mode
val qs_client_exec : mode
val original : mode

type label =
  | Reserved of { client : Syntax.hid; targets : Syntax.hid list }
  | Logged of {
      client : Syntax.hid;
      target : Syntax.hid;
      action : Syntax.action;
    }
  | Executed of {
      handler : Syntax.hid;
      client : Syntax.hid option;
      action : Syntax.action;
    }
  | Synced of { client : Syntax.hid; target : Syntax.hid }
  | EndServed of { handler : Syntax.hid; client : Syntax.hid }
  | Failed of {
      handler : Syntax.hid;
      client : Syntax.hid;
      action : Syntax.action;
    }
      (** A served call's body failed: the handler keeps running but is
          now {e dirty} for [client] (SCOOP's dirty-processor rule). *)
  | Raised of {
      client : Syntax.hid;
      target : Syntax.hid;
      action : Syntax.action;
    }
      (** The pending failure [action] was delivered to [client] at a
          sync point with the dirty handler [target]; the handler is
          clean for [client] again. *)
  | TimedOut of { client : Syntax.hid; target : Syntax.hid }
      (** A blocking rendezvous ([Syntax.QueryTimeout]) was abandoned at
          its deadline: the client resumes {e without} poisoning
          anything — the handler still serves everything logged, and its
          release marker is discharged silently. *)
  | Shed of {
      handler : Syntax.hid;
      client : Syntax.hid;
      action : Syntax.action;
    }
      (** Admission-level [`Shed_oldest] ([State.with_cap]): the oldest
          pending countable request was failed instead of executed; the
          handler is dirty for [client] (the runtime delivers
          [Overloaded] as the failure completion). *)
  | Poisoned of {
      handler : Syntax.hid;
      client : Syntax.hid;
      action : Syntax.action;
    }
      (** The registration ended while the handler was dirty for
          [client]: the un-synced failure surfaces at the block boundary
          (the runtime's block-exit [Handler_failure] check). *)
  | Stepped of Syntax.hid list
      (** Administrative transition, carrying the participating handler
          ids (used by the exploration independence relation). *)

val pp_label : Format.formatter -> label -> unit

val steps : mode -> State.t -> (label * State.t) list
(** All transitions enabled in a state.  An empty result on a
    non-{!State.is_terminal} state is a deadlock. *)

val norm : Syntax.stmt -> Syntax.stmt
(** Eager seq/seqSkip normalization (exposed for tests). *)
