(** Configurations of the operational semantics (the parallel compositions
    of handler triples of paper Fig. 3).  Immutable; structural equality
    identifies states during exploration. *)

type pqueue = {
  client : Syntax.hid;
  items : Syntax.stmt list;
}

type handler = {
  id : Syntax.hid;
  rq : pqueue list;
  prog : Syntax.stmt;
  locked_by : Syntax.hid option;
  dirty : (Syntax.hid * Syntax.action) list;
      (** clients whose logged call failed on this handler (SCOOP's
          dirty-processor state), with the first failing action *)
  abandoned : Syntax.hid list;
      (** clients that abandoned a timed wait on this handler; their
          pending release marker is discharged silently when served *)
  cap : int option;
      (** admission bound: serving sheds the oldest countable request
          while more than [n] are pending ([`Shed_oldest]) *)
}

type t = handler list

val init : (Syntax.hid * Syntax.stmt) list -> t
(** Build an initial state from root programs; handlers mentioned only as
    targets are created idle. *)

val handler : t -> Syntax.hid -> handler
val mem : t -> Syntax.hid -> bool
val update : t -> handler -> t

val reserve : t -> client:Syntax.hid -> target:Syntax.hid -> t
(** Append an empty private queue for [client] on [target] (separate rule). *)

val with_cap : t -> target:Syntax.hid -> int -> t
(** Bound [target]'s admission: serving sheds the oldest countable request
    whenever more than [n] are pending (a bounded mailbox under the
    [`Shed_oldest] overflow policy). *)

val log : t -> client:Syntax.hid -> target:Syntax.hid -> Syntax.stmt -> t
(** Append one request to [client]'s most recent private queue on
    [target] (call / query rules).
    @raise Invalid_argument if the client is not registered. *)

val log_many :
  t -> client:Syntax.hid -> target:Syntax.hid -> Syntax.stmt list -> t

val is_idle : handler -> bool
val is_terminal : t -> bool

val pp : Format.formatter -> t -> unit
val pp_handler : Format.formatter -> handler -> unit
