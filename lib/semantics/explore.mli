(** Bounded exhaustive exploration of the semantics. *)

type stats = {
  states : int;
  terminals : State.t list;
  deadlocks : State.t list; (** stuck states that are not terminal (§2.5) *)
  truncated : bool;
}

val reachable : ?max_states:int -> Step.mode -> State.t -> stats
(** BFS over all distinct reachable states. *)

type run = {
  labels : Step.label list;
  final : State.t;
  deadlocked : bool;
}

val runs :
  ?max_runs:int ->
  ?max_depth:int ->
  Step.mode ->
  State.t ->
  run list * bool
(** DFS enumeration of complete executions; the boolean reports
    truncation. *)

val observable_traces :
  ?max_runs:int ->
  ?max_depth:int ->
  Step.mode ->
  State.t ->
  filter:(Step.label -> 'a option) ->
  'a list list * bool
(** Distinct per-run projections of non-deadlocked complete runs. *)

val on_handler : Syntax.hid -> Step.label -> Syntax.action option
(** Projection selecting the actions executed on one handler. *)

val find_state :
  ?max_states:int ->
  Step.mode ->
  State.t ->
  pred:(State.t -> bool) ->
  State.t option
(** BFS for a reachable state satisfying [pred]. *)

val exists_state :
  ?max_states:int -> Step.mode -> State.t -> pred:(State.t -> bool) -> bool
