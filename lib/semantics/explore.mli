(** Bounded exhaustive exploration of the semantics. *)

type stats = {
  states : int;
  terminals : State.t list;
  deadlocks : State.t list; (** stuck states that are not terminal (§2.5) *)
  truncated : bool;
  reduced : bool;
      (** produced by the DPOR search ({!reduced}): [states] counts only
          the states the reduced search visited *)
}

val reachable : ?max_states:int -> Step.mode -> State.t -> stats
(** BFS over all distinct reachable states (unreduced;
    [stats.reduced = false]). *)

type run = {
  labels : Step.label list;
  final : State.t;
  deadlocked : bool;
}

val runs :
  ?max_runs:int ->
  ?max_depth:int ->
  Step.mode ->
  State.t ->
  run list * bool
(** DFS enumeration of complete executions; the boolean reports
    truncation. *)

val observable_traces :
  ?max_runs:int ->
  ?max_depth:int ->
  Step.mode ->
  State.t ->
  filter:(Step.label -> 'a option) ->
  'a list list * bool
(** Distinct per-run projections of non-deadlocked complete runs. *)

val observable_of_runs :
  run list -> filter:(Step.label -> 'a option) -> 'a list list
(** The projection of {!observable_traces} applied to an existing run
    list (e.g. one produced by {!reduced}), for cross-checking reduced
    against unreduced enumeration. *)

val participants : Step.label -> Syntax.hid list
(** Handler ids whose local state a transition reads or writes; two
    labels are {e dependent} iff their participant sets intersect (the
    independence relation of the DPOR search). *)

val reduced :
  ?max_runs:int ->
  ?max_depth:int ->
  Step.mode ->
  State.t ->
  run list * stats
(** Dynamic partial-order reduction (Flanagan–Godefroid style backtrack
    sets): a DFS that starts with a single transition per state and adds
    alternatives only where a later transition of the current path is
    dependent on the one taken.  Sound for the properties checked here:
    every Mazurkiewicz trace — hence every observable projection and
    every reachable deadlock — is represented by at least one explored
    run, while commuting interleavings (and the states only they reach)
    are pruned.  [stats.reduced = true]; [stats.states] counts the
    distinct states the reduced search visited, comparable against
    {!reachable}'s exhaustive count. *)

val on_handler : Syntax.hid -> Step.label -> Syntax.action option
(** Projection selecting the actions executed on one handler. *)

val find_state :
  ?max_states:int ->
  Step.mode ->
  State.t ->
  pred:(State.t -> bool) ->
  State.t option
(** BFS for a reachable state satisfying [pred]. *)

val exists_state :
  ?max_states:int -> Step.mode -> State.t -> pred:(State.t -> bool) -> bool
