(** Machine-checkable formulations of the SCOOP reasoning guarantees
    (paper §2.2) over explored runs. *)

type violation = {
  reason : string;
  at : int;
}

val pp_violation : Format.formatter -> violation -> unit

val check_run : Step.label list -> (unit, violation) result
(** Check guarantee 2 (per-client ordering and non-interleaving of
    registrations) on one run's labels. *)

val check_fifo_service : Step.label list -> (unit, violation) result
(** Check the queue-of-queues FIFO property (§2.3): each handler completes
    registrations in the order they were inserted. *)

val check_program :
  ?max_runs:int ->
  ?max_depth:int ->
  Step.mode ->
  State.t ->
  (Explore.run * violation) option * int * bool
(** Check every complete run of a program.  Returns the first violating
    run (if any), the number of runs examined, and whether exploration was
    truncated. *)
