(** Machine-checkable formulations of the SCOOP reasoning guarantees
    (paper §2.2) over explored runs. *)

type violation = {
  reason : string;
  at : int;
}

val pp_violation : Format.formatter -> violation -> unit

val check_run : Step.label list -> (unit, violation) result
(** Check guarantee 2 (per-client ordering and non-interleaving of
    registrations) on one run's labels. *)

val check_fifo_service : Step.label list -> (unit, violation) result
(** Check the queue-of-queues FIFO property (§2.3): each handler completes
    registrations in the order they were inserted. *)

type report = {
  violation : (Explore.run * violation) option;
      (** first violating run, if any *)
  runs : int;  (** number of complete runs examined *)
  truncated : bool;
      (** the enumeration hit a budget: the check is {e not} exhaustive
          and absence of a violation is not a guarantee *)
}

val exhaustive : report -> bool
(** [not report.truncated]: only an exhaustive, violation-free report
    establishes the guarantee. *)

val check_program :
  ?max_runs:int -> ?max_depth:int -> Step.mode -> State.t -> report
(** Check every complete run of a program (bounded).  Callers must
    consult {!report.truncated} (or {!exhaustive}) before treating a
    [None] violation as a proof — a truncated search is a smoke test,
    not a guarantee. *)
