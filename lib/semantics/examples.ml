(* The paper's example programs, as inputs to the explorer.

   Conventions: client handlers get small ids (1, 2), passive data handlers
   get ids from 10. *)

open Syntax

let x = 10
let y = 11

(* Fig. 1: two clients share handler x; thread 1 logs foo and bar around a
   local computation, thread 2 logs bar' and queries baz.  The paper states
   there are exactly two possible interleavings of the actions on x:
     foo bar1 bar2 baz   or   bar2 baz foo bar1. *)
let fig1 =
  State.init
    [
      ( 1,
        Separate
          ( [ x ],
            seq [ Call (x, "foo"); Atom "long_comp"; Call (x, "bar1") ] ) );
      ( 2,
        Separate
          ( [ x ],
            seq [ Call (x, "bar2"); Atom "short_comp"; Query (x, "baz") ] ) );
    ]

let fig1_orders =
  [
    [ "bar2"; "baz"; "foo"; "bar1" ];
    [ "foo"; "bar1"; "bar2"; "baz" ];
  ]

(* Fig. 5: multiple reservations.  Two clients each reserve x and y
   together and set both to their colour; any observer reserving both must
   see equal colours.  In the semantics we verify the stronger structural
   property behind it: the service order of registrations is identical on
   x and y. *)
let fig5 =
  State.init
    [
      (1, Separate ([ x; y ], seq [ Call (x, "set_red"); Call (y, "set_red") ]));
      (2, Separate ([ x; y ], seq [ Call (x, "set_blue"); Call (y, "set_blue") ]));
    ]

(* The same program written with nested (non-atomic) reservations, which
   the paper warns may expose the enqueue race. *)
let fig5_nested =
  State.init
    [
      ( 1,
        Separate
          ( [ x ],
            Separate ([ y ], seq [ Call (x, "set_red"); Call (y, "set_red") ])
          ) );
      ( 2,
        Separate
          ( [ x ],
            Separate ([ y ], seq [ Call (x, "set_blue"); Call (y, "set_blue") ])
          ) );
    ]

(* Fig. 6: inconsistent nested reservation order.  Without queries this
   cannot deadlock under SCOOP/Qs (reservation is non-blocking), but does
   deadlock under the original lock-based semantics. *)
let fig6 =
  State.init
    [
      ( 1,
        Separate
          ([ x ], Separate ([ y ], seq [ Call (x, "foo"); Call (y, "bar") ]))
      );
      ( 2,
        Separate
          ([ y ], Separate ([ x ], seq [ Call (x, "foo"); Call (y, "bar") ]))
      );
    ]

(* Fig. 6 with queries added to the innermost blocks (§2.5): now SCOOP/Qs
   can deadlock too.  For the wait cycle to close, each client must query
   the handler it reserved in its *inner* block (client 1 reserves y inside
   and queries it; client 2 reserves x inside and queries it): client 1's
   release marker can then sit behind client 2's unfinished registration
   and vice versa.  With the queries on the outer handlers the reservation
   program order makes the cyclic queue configuration unreachable — a fact
   the explorer verifies (see [fig6_queries_outer] in the tests). *)
let fig6_queries =
  State.init
    [
      ( 1,
        Separate
          ( [ x ],
            Separate
              ( [ y ],
                seq [ Call (x, "foo"); Call (y, "bar"); Query (y, "qy") ] ) )
      );
      ( 2,
        Separate
          ( [ y ],
            Separate
              ( [ x ],
                seq [ Call (x, "foo"); Call (y, "bar"); Query (x, "qx") ] ) )
      );
    ]

(* The variant where each client queries its outer handler: provably
   deadlock-free under SCOOP/Qs despite the inconsistent nesting order. *)
let fig6_queries_outer =
  State.init
    [
      ( 1,
        Separate
          ( [ x ],
            Separate
              ( [ y ],
                seq [ Call (x, "foo"); Call (y, "bar"); Query (x, "qx") ] ) )
      );
      ( 2,
        Separate
          ( [ y ],
            Separate
              ( [ x ],
                seq [ Call (x, "foo"); Call (y, "bar"); Query (y, "qy") ] ) )
      );
    ]

(* Exception propagation (dirty-processor rule): client 1 logs a call
   whose body will fail, then queries the same handler.  Every run must
   serve the failing call (Failed: the handler marks itself dirty, does
   not die) and then deliver the failure at the query's sync point
   (Raised) — the runtime analogue raises [Scoop.Handler_failure]
   there. *)
let fail_call =
  State.init
    [ (1, Separate ([ x ], seq [ CallFail (x, "boom"); Query (x, "probe") ])) ]

(* The same failing call with no later sync point: the dirt dies with
   the registration (the runtime's block-exit check is the boundary
   analogue), so no run contains a Raised transition and the program
   still terminates. *)
let fail_call_no_sync =
  State.init [ (1, Separate ([ x ], seq [ CallFail (x, "boom") ])) ]

(* Timeout (PR 4 deadline semantics): client 1 logs a call, then a query
   under a deadline.  The wait is abandonable: runs split between the
   rendezvous completing (Synced) and the deadline firing (TimedOut), but
   the handler executes both logged actions in every complete run — a
   timeout abandons the wait, never the work, and poisons nothing. *)
let timeout_call =
  State.init
    [ (1, Separate ([ x ], seq [ Call (x, "work"); QueryTimeout (x, "probe") ])) ]

let timeout_call_trace = [ "work"; "probe" ]

(* Shed (PR 5 admission control): handler x is bounded at one pending
   request while client 1 logs a gate call and three more.  Whenever more
   than one countable request is pending at a service step, the oldest is
   shed instead of executed ([`Shed_oldest]); the interleaving of logging
   and serving decides how many survive.  The fastest-handler run executes
   everything; the slowest-handler run sheds all but the last. *)
let shed_overload =
  State.with_cap ~target:x
    (State.init
       [
         ( 1,
           Separate
             ( [ x ],
               seq
                 [
                   Call (x, "gate");
                   Call (x, "a1");
                   Call (x, "a2");
                   Call (x, "a3");
                 ] ) );
       ])
    1

(* Poison at the boundary (PR 4 block-exit check): a wedge call, a failing
   call, then a query.  The wedge makes the runtime analogue deterministic
   (everything is logged before the handler serves); every complete run
   executes the wedge, marks the handler dirty (Failed), executes the
   probe, and delivers the failure at the query's sync point (Raised). *)
let poison_probe =
  State.init
    [
      ( 1,
        Separate
          ( [ x ],
            seq [ Call (x, "wedge"); CallFail (x, "boom"); Query (x, "probe") ]
          ) );
    ]

(* State predicate for the Fig. 5 consistency property: some observer
   could see different colours iff the registration orders of clients 1
   and 2 differ between x's and y's request queues. *)
let registration_order st h =
  List.filter_map
    (fun (pq : State.pqueue) ->
      if pq.State.client = 1 || pq.State.client = 2 then Some pq.State.client
      else None)
    (State.handler st h).State.rq

let fig5_mismatch st =
  let ox = registration_order st x and oy = registration_order st y in
  List.length ox = 2 && List.length oy = 2 && ox <> oy

(* Service order of registrations on a handler, for the Fig. 5 check. *)
let service_order h = function
  | Step.EndServed { handler; client } when handler = h -> Some client
  | _ -> None
