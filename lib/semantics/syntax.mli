(** Abstract syntax of the SCOOP/Qs operational semantics (paper §2.3).

    Programs are written with [Separate], [Call], [CallFail], [Query],
    [QueryTimeout] and [Atom]; the remaining constructors ([Wait],
    [WaitT], [Release], [End], [CallEnd], [QueryExec], [Fail]) are
    runtime forms produced by the rules.  [CallFail] is an asynchronous
    call whose body raises on the handler — the source form of the
    exception-propagation rule.  [QueryTimeout] is a blocking query
    under a deadline — the source form of the timeout rule (the wait is
    abandonable; the handler executes the body regardless). *)

type hid = int
type action = string

type stmt =
  | Skip
  | End
  | Atom of action
  | Separate of hid list * stmt
  | Call of hid * action
  | CallEnd of hid
  | Query of hid * action
  | QueryTimeout of hid * action
  | Wait of hid
  | WaitT of hid
  | Release of hid
  | QueryExec of hid * action
  | CallFail of hid * action
  | Fail of action
  | Seq of stmt * stmt

val seq : stmt list -> stmt
(** Right-nested sequence; [seq [] = Skip]. *)

val handlers_of : stmt -> hid list
(** All handler ids mentioned (with duplicates). *)

val pp : Format.formatter -> stmt -> unit
