(** Trace conformance: replay an observed event stream against the
    logging/execution discipline of the operational semantics.

    The runtime's tracer ([Scoop.Trace]) observes client- and
    handler-side events of real executions.  This module checks such a
    stream against the per-processor request-log automaton implied by
    the semantics in {!Step}: calls are executed in logging order and
    never before they are logged, a shed request consumes a logged slot
    and poisons the registration, and a {e sync elision} (the dynamic
    coalescing of §3.4.1 and its handler-side generalization) is only
    legal while the processor is in the synced state on a clean
    registration.

    The checker is deliberately representation-agnostic: callers map
    their concrete trace vocabulary onto {!event} ([Qs_conform] maps
    [Scoop.Trace.kind], a test can hand-build sequences).  It is sound
    for single-client-per-processor streams — one registration's
    events, or sequential registrations, on each processor id.  With
    several concurrent clients merged into one stream the interleaving
    of their log watermarks is not recoverable; [Qs_conform] partitions
    real traces per (processor, registration) before checking, and
    rejects unattributed streams instead of guessing. *)

type event =
  | Reserved of int  (** a separate block reserved the processor *)
  | Logged of int  (** an asynchronous call was logged *)
  | Executed of int  (** the handler executed one logged call *)
  | Synced of int
      (** a blocking round trip completed (sync or blocking query):
          the log is drained and the client knows it *)
  | Pipelined of int
      (** a pipelined query was fulfilled by the handler: everything
          logged before it has been executed *)
  | Elided of int
      (** a sync round trip was skipped (dynamic elision) — legal only
          in the synced state on a clean registration *)
  | TimedOut of int
      (** a blocking rendezvous was abandoned at its deadline: nothing
          is learned about the log, and nothing is poisoned *)
  | Shed of int
      (** the mailbox shed a logged-but-unexecuted request
          ([`Shed_oldest]): consumes a logged slot, poisons the
          registration *)
  | Poisoned of int
      (** a failure completion was delivered: the registration is dirty
          until the failure is raised at the client *)

val pp_event : Format.formatter -> event -> unit

type violation = {
  index : int;  (** position of the offending event in the stream *)
  event : event;
  reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check : event list -> (unit, violation list) result
(** Replay the stream through one automaton per processor id.

    Per processor, track [logged] (calls logged so far), [executed]
    (calls the handler has applied), [shed] (calls the mailbox failed
    instead of running), [synced] (does the client know the log is
    drained?) and [dirty] (was a failure completion delivered?):

    - [Logged]: [logged + 1]; leaves the synced state.
    - [Executed]: [executed + 1]; a violation if [executed + shed]
      would exceed [logged] — execution before logging, or execution of
      a request that was already shed, breaks program order.
    - [Shed]: [shed + 1] and the registration becomes dirty; a
      violation if there is no logged-but-unaccounted slot to consume.
    - [Poisoned]: the registration becomes dirty.
    - [Synced]: the handler has necessarily drained the log
      ([executed := logged - shed]); enters the synced state.
    - [Pipelined]: enters the synced state, but does {e not} clamp the
      executed watermark — a fulfilment proves draining only up to the
      query's issue point, and calls logged between issue and
      fulfilment may precede this event while still unexecuted.
    - [TimedOut]: no state change — an abandoned rendezvous learns
      nothing and poisons nothing.
    - [Elided]: a violation unless in the synced state on a clean
      registration — an elision claims a round trip was unnecessary,
      which is false if something was logged since the last round trip
      or a failure is pending delivery.
    - [Reserved]: a new registration starts clean and unsynced; the
      log watermarks are cumulative across sequential registrations.

    Returns [Ok ()] on a conforming stream, or [Error vs] with every
    violation found (the automaton keeps consuming after a violation,
    clamping state, so one bad event does not cascade). *)

val check_all : event list -> violation list
(** [check] flattened: the (possibly empty) violation list. *)
