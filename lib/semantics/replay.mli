(** Trace conformance: replay an observed event stream against the
    logging/execution discipline of the operational semantics.

    The runtime's tracer ([Scoop.Trace]) observes client- and
    handler-side events of real executions.  This module checks such a
    stream against the per-processor request-log automaton implied by
    the semantics in {!Step}: calls are executed in logging order and
    never before they are logged, and a {e sync elision} (the dynamic
    coalescing of §3.4.1 and its handler-side generalization) is only
    legal while the processor is in the synced state — i.e. some
    earlier round trip established that the log was drained, and
    nothing has been logged since.

    The checker is deliberately representation-agnostic: callers map
    their concrete trace vocabulary onto {!event} (the benchmark
    harness maps [Scoop.Trace.kind], a test can hand-build sequences).
    It is sound for single-client-per-processor traces, which is what
    the traced workloads produce; with several concurrent clients the
    interleaving of their log watermarks is not recoverable from the
    merged stream. *)

type event =
  | Reserved of int  (** a separate block reserved the processor *)
  | Logged of int  (** an asynchronous call was logged *)
  | Executed of int  (** the handler executed one logged call *)
  | Synced of int
      (** a blocking round trip completed (sync or blocking query):
          the log is drained and the client knows it *)
  | Pipelined of int
      (** a pipelined query was fulfilled by the handler: everything
          logged before it has been executed *)
  | Elided of int
      (** a sync round trip was skipped (dynamic elision) — legal only
          in the synced state *)

val pp_event : Format.formatter -> event -> unit

type violation = {
  index : int;  (** position of the offending event in the stream *)
  event : event;
  reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check : event list -> (unit, violation list) result
(** Replay the stream through one automaton per processor id.

    Per processor, track [logged] (calls logged so far), [executed]
    (calls the handler has applied) and [synced] (does the client know
    the log is drained?):

    - [Logged]: [logged + 1]; leaves the synced state.
    - [Executed]: [executed + 1]; a violation if it would exceed
      [logged] (execution before logging breaks program order).
    - [Synced] / [Pipelined]: the handler has necessarily drained the
      log ([executed := logged]); enters the synced state.
    - [Elided]: a violation unless in the synced state — an elision
      claims a round trip was unnecessary, which is only true if the
      drained status was established and nothing was logged since.
    - [Reserved]: recorded for completeness; no state change.

    Returns [Ok ()] on a conforming stream, or [Error vs] with every
    violation found (the automaton keeps consuming after a violation,
    clamping state, so one bad event does not cascade). *)

val check_all : event list -> violation list
(** [check] flattened: the (possibly empty) violation list. *)
