(* Small-step transition relation: the inference rules of Fig. 3, the
   generalized separate rule of §2.4, the modified query rule of §3.2, and
   (for contrast) the lock-based separate rule of the original SCOOP
   semantics.

   Two administrative simplifications, both observational equivalences that
   shrink the state space:
   - seq/seqSkip normalization is applied eagerly ([norm]), so [skip; s]
     never occupies a step of its own;
   - the run rule executes an [Atom] queue item immediately instead of
     first moving it into the program slot (the intermediate state has no
     other enabled interaction with it), and the end rule fires together
     with popping the [End] marker. *)

type mode = {
  lock_based : bool;
      (* original SCOOP: a separate block owns the handler exclusively *)
  client_exec : bool; (* §3.2 modified query rule *)
}

(* The published SCOOP/Qs semantics (Fig. 3). *)
let qs = { lock_based = false; client_exec = false }

(* SCOOP/Qs with the optimized query rule (§3.2). *)
let qs_client_exec = { lock_based = false; client_exec = true }

(* The original lock-based SCOOP semantics (Fig. 2). *)
let original = { lock_based = true; client_exec = false }

type label =
  | Reserved of { client : Syntax.hid; targets : Syntax.hid list }
  | Logged of { client : Syntax.hid; target : Syntax.hid; action : Syntax.action }
  | Executed of {
      handler : Syntax.hid;
      client : Syntax.hid option; (* None: the handler's own program *)
      action : Syntax.action;
    }
  | Synced of { client : Syntax.hid; target : Syntax.hid }
  | EndServed of { handler : Syntax.hid; client : Syntax.hid }
  | Failed of {
      handler : Syntax.hid;
      client : Syntax.hid;
      action : Syntax.action;
    } (* a served call failed: the handler is now dirty for the client *)
  | Raised of {
      client : Syntax.hid;
      target : Syntax.hid;
      action : Syntax.action;
    } (* the pending failure was delivered to the client at a sync point *)
  | TimedOut of {
      client : Syntax.hid;
      target : Syntax.hid;
    } (* a blocking rendezvous was abandoned at its deadline: the client
         resumes without poisoning anything; the handler's release marker
         is discharged silently when it surfaces *)
  | Shed of {
      handler : Syntax.hid;
      client : Syntax.hid;
      action : Syntax.action;
    } (* admission-level [`Shed_oldest]: the oldest pending countable
         request was failed instead of executed; the handler is dirty
         for that client (the runtime delivers [Overloaded]) *)
  | Poisoned of {
      handler : Syntax.hid;
      client : Syntax.hid;
      action : Syntax.action;
    } (* dirty-processor propagation at the registration boundary: the
         registration ended while the handler was dirty for the client
         (the runtime's block-exit [Handler_failure] check) *)
  | Stepped of Syntax.hid list
    (* administrative transition; carries the participating handler ids
       (for the exploration independence relation) *)

let pp_label ppf = function
  | Reserved { client; targets } ->
    Format.fprintf ppf "reserve(%d -> %a)" client
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      targets
  | Logged { client; target; action } ->
    Format.fprintf ppf "log(%d -> %d: %s)" client target action
  | Executed { handler; client; action } ->
    Format.fprintf ppf "exec(%d%s: %s)" handler
      (match client with Some c -> Printf.sprintf " for %d" c | None -> "")
      action
  | Synced { client; target } -> Format.fprintf ppf "sync(%d <-> %d)" client target
  | EndServed { handler; client } ->
    Format.fprintf ppf "end(%d of %d)" handler client
  | Failed { handler; client; action } ->
    Format.fprintf ppf "fail(%d for %d: %s)" handler client action
  | Raised { client; target; action } ->
    Format.fprintf ppf "raise(%d <- %d: %s)" client target action
  | TimedOut { client; target } ->
    Format.fprintf ppf "timeout(%d -x %d)" client target
  | Shed { handler; client; action } ->
    Format.fprintf ppf "shed(%d of %d: %s)" handler client action
  | Poisoned { handler; client; action } ->
    Format.fprintf ppf "poison(%d of %d: %s)" handler client action
  | Stepped _ -> Format.pp_print_string ppf "tau"

let rec norm s =
  match s with
  | Syntax.Seq (s1, s2) -> (
    match norm s1 with
    | Syntax.Skip -> norm s2
    | s1' -> Syntax.Seq (s1', s2))
  | s -> s

(* Decompose a (normalized, non-Skip) statement into its leftmost redex and
   the context that rebuilds the program from the redex's residue. *)
let rec redex s =
  match norm s with
  | Syntax.Seq (s1, s2) ->
    let r, ctx = redex s1 in
    (r, fun r' -> Syntax.Seq (ctx r', s2))
  | s -> (s, fun r' -> r')

let set_prog state (h : State.handler) prog =
  State.update state { h with prog = norm prog }

(* Steps available to handler [h]'s own program. *)
let program_steps mode state (h : State.handler) =
  match norm h.prog with
  | Syntax.Skip -> []
  | p -> (
    let r, ctx = redex p in
    match r with
    | Syntax.Atom a ->
      [
        ( Executed { handler = h.id; client = None; action = a },
          set_prog state h (ctx Syntax.Skip) );
      ]
    | Syntax.QueryExec (x, a) ->
      (* Query body runs on the client; it reads the (synced) target, so
         the action is attributed to the target handler. *)
      [
        ( Executed { handler = x; client = Some h.id; action = a },
          set_prog state h (ctx Syntax.Skip) );
      ]
    | Syntax.Separate (xs, s) ->
      if List.mem h.id xs then
        invalid_arg "Step: a handler cannot reserve itself";
      let free x = (State.handler state x).locked_by = None in
      if mode.lock_based && not (List.for_all free xs) then []
      else begin
        let state' =
          List.fold_left
            (fun st x ->
              let st = State.reserve st ~client:h.id ~target:x in
              if mode.lock_based then
                let hx = State.handler st x in
                State.update st { hx with locked_by = Some h.id }
              else st)
            state xs
        in
        let ends = Syntax.seq (List.map (fun x -> Syntax.CallEnd x) xs) in
        [
          ( Reserved { client = h.id; targets = xs },
            set_prog state' (State.handler state' h.id)
              (ctx (Syntax.Seq (s, ends))) );
        ]
      end
    | Syntax.Call (x, a) ->
      let state' = State.log state ~client:h.id ~target:x (Syntax.Atom a) in
      [
        ( Logged { client = h.id; target = x; action = a },
          set_prog state' (State.handler state' h.id) (ctx Syntax.Skip) );
      ]
    | Syntax.CallFail (x, a) ->
      (* Logging a failing call is indistinguishable from logging a
         sound one — the failure only materializes when served. *)
      let state' = State.log state ~client:h.id ~target:x (Syntax.Fail a) in
      [
        ( Logged { client = h.id; target = x; action = a },
          set_prog state' (State.handler state' h.id) (ctx Syntax.Skip) );
      ]
    | Syntax.CallEnd x ->
      let state' = State.log state ~client:h.id ~target:x Syntax.End in
      let state' =
        if mode.lock_based then
          let hx = State.handler state' x in
          if hx.locked_by = Some h.id then
            State.update state' { hx with locked_by = None }
          else state'
        else state'
      in
      [
        ( Stepped [ h.id; x ],
          set_prog state' (State.handler state' h.id) (ctx Syntax.Skip) );
      ]
    | Syntax.Query (x, a) ->
      if mode.client_exec then begin
        (* Modified rule (§3.2): only the release marker is logged; the
           body executes on the client after synchronization. *)
        let state' =
          State.log state ~client:h.id ~target:x (Syntax.Release h.id)
        in
        [
          ( Logged { client = h.id; target = x; action = a },
            set_prog state' (State.handler state' h.id)
              (ctx (Syntax.Seq (Syntax.Wait x, Syntax.QueryExec (x, a)))) );
        ]
      end
      else begin
        (* Original rule: log the body and the release marker. *)
        let state' =
          State.log_many state ~client:h.id ~target:x
            [ Syntax.Atom a; Syntax.Release h.id ]
        in
        [
          ( Logged { client = h.id; target = x; action = a },
            set_prog state' (State.handler state' h.id) (ctx (Syntax.Wait x)) );
        ]
      end
    | Syntax.QueryTimeout (x, a) ->
      (* Timeout rule, logging half: logged exactly like a plain query —
         the handler executes the body whatever the wait's outcome, which
         is what the runtime does (a timed-out query's request is already
         in the private queue and is still served).  The client waits
         with the abandonable [WaitT] form; the §3.2 client-exec
         optimization never applies to timed queries (they always take
         the packaged round-trip shape). *)
      let state' =
        State.log_many state ~client:h.id ~target:x
          [ Syntax.Atom a; Syntax.Release h.id ]
      in
      [
        ( Logged { client = h.id; target = x; action = a },
          set_prog state' (State.handler state' h.id) (ctx (Syntax.WaitT x)) );
      ]
    | Syntax.Wait _ | Syntax.WaitT _ | Syntax.Release _ ->
      [] (* joint sync rule only *)
    | Syntax.End | Syntax.Fail _ -> assert false (* queue items, never programs *)
    | Syntax.Skip | Syntax.Seq _ -> assert false (* excluded by norm/redex *))

(* Queue items the admission bound counts (and may shed): the runtime's
   bounded mailbox counts calls/queries, never syncs or ends. *)
let countable = function Syntax.Atom _ | Syntax.Fail _ -> true | _ -> false

(* The run and end rules: an idle handler serves the head private queue.
   With an admission cap ([State.with_cap]), the shed rule preempts
   execution: while more countable requests are pending than the cap
   allows, the oldest one is failed instead of executed, exactly like the
   runtime's [`Shed_oldest] debt, which is paid oldest-first immediately
   before serving a countable request. *)
let service_steps state (h : State.handler) =
  if norm h.prog <> Syntax.Skip then []
  else
    match h.rq with
    | [] -> []
    | pq :: rest_rq -> (
      let over_cap =
        match h.cap with
        | None -> false
        | Some n ->
          List.fold_left
            (fun acc (q : State.pqueue) ->
              acc + List.length (List.filter countable q.State.items))
            0 h.rq
          > n
      in
      match pq.State.items with
      | [] -> [] (* client still logging; nothing to run yet *)
      | (Syntax.Atom a | Syntax.Fail a) :: rest when over_cap ->
        (* Shed rule: the mailbox is over its bound, so the oldest pending
           countable request is failed instead of executed.  The client's
           view is a failed call: the handler is dirty for it (the runtime
           delivers [Overloaded] as the failure completion). *)
        let dirty =
          if List.mem_assoc pq.State.client h.dirty then h.dirty
          else h.dirty @ [ (pq.State.client, a) ]
        in
        [
          ( Shed { handler = h.id; client = pq.State.client; action = a },
            State.update state
              { h with dirty; rq = { pq with State.items = rest } :: rest_rq }
          );
        ]
      | Syntax.Atom a :: rest ->
        [
          ( Executed { handler = h.id; client = Some pq.State.client; action = a },
            State.update state
              { h with rq = { pq with State.items = rest } :: rest_rq } );
        ]
      | Syntax.Fail a :: rest ->
        (* Exception-propagation rule, handler half: the call's body
           fails.  The handler does not die — it marks itself dirty for
           this client (recording the first failing action) and keeps
           serving; the failure surfaces at the client's next sync point
           (see [sync_steps]) or is dropped when the registration ends
           (the runtime re-surfaces it at block exit instead). *)
        let dirty =
          if List.mem_assoc pq.State.client h.dirty then h.dirty
          else h.dirty @ [ (pq.State.client, a) ]
        in
        [
          ( Failed { handler = h.id; client = pq.State.client; action = a },
            State.update state
              { h with dirty; rq = { pq with State.items = rest } :: rest_rq }
          );
        ]
      | Syntax.Release c :: rest when List.mem c h.abandoned ->
        (* Timeout rule, handler half: the client abandoned this
           rendezvous at its deadline, so the release marker is
           discharged silently instead of blocking the handler on a
           wait that will never come. *)
        [
          ( Stepped [ h.id; c ],
            State.update state
              {
                h with
                abandoned = List.filter (fun c' -> c' <> c) h.abandoned;
                rq = { pq with State.items = rest } :: rest_rq;
              } );
        ]
      | Syntax.Release c :: rest ->
        [
          ( Stepped [ h.id; c ],
            State.update state
              {
                h with
                prog = Syntax.Release c;
                rq = { pq with State.items = rest } :: rest_rq;
              } );
        ]
      | Syntax.End :: rest -> (
        assert (rest = []);
        let served =
          State.update state
            {
              h with
              rq = rest_rq;
              (* Dirt does not outlive the registration; but dropping it
                 is observable — see [Poisoned] below. *)
              dirty = List.remove_assoc pq.State.client h.dirty;
            }
        in
        match List.assoc_opt pq.State.client h.dirty with
        | Some a ->
          (* Exception-propagation rule at the registration boundary:
             the registration ends while the handler is still dirty for
             the client — the runtime's block-exit poison check raises
             [Handler_failure] here. *)
          [
            ( Poisoned { handler = h.id; client = pq.State.client; action = a },
              served );
          ]
        | None ->
          [ (EndServed { handler = h.id; client = pq.State.client }, served) ])
      | _ -> assert false)

(* The sync rule: wait x (client) meets release h (handler).  The timed
   wait [WaitT] admits the same rendezvous, plus a [TimedOut] transition
   that may fire at any moment while the wait blocks (the deadline is not
   modelled quantitatively — both outcomes are explored). *)
let sync_steps state (h : State.handler) =
  match norm h.prog with
  | Syntax.Skip -> []
  | p -> (
    let r, ctx = redex p in
    let rendezvous x =
      let hx = State.handler state x in
      if norm hx.prog = Syntax.Release h.id then
        let state' = set_prog state h (ctx Syntax.Skip) in
        match List.assoc_opt h.id hx.dirty with
        | None ->
          let state' = set_prog state' (State.handler state' x) Syntax.Skip in
          [ (Synced { client = h.id; target = x }, state') ]
        | Some a ->
          (* Exception-propagation rule, client half: client and dirty
             handler meet at the sync point; the pending failure is
             delivered (the runtime raises [Handler_failure] here) and
             the handler is clean for this client again.  The sync
             still completes — both programs advance. *)
          let hx' = State.handler state' x in
          let state' =
            State.update state'
              {
                hx' with
                prog = Syntax.Skip;
                dirty = List.remove_assoc h.id hx'.dirty;
              }
          in
          [ (Raised { client = h.id; target = x; action = a }, state') ]
      else []
    in
    match r with
    | Syntax.Wait x -> rendezvous x
    | Syntax.WaitT x ->
      (* Timeout rule, client half: the client resumes without the
         result and without poisoning anything — pending dirt stays
         pending (it surfaces at the next sync point or the registration
         boundary), and the handler still serves everything logged.  If
         the handler is already offering the release, the offer is
         discharged directly; otherwise the client is remembered in
         [abandoned] so the release is discharged when served. *)
      let timeout =
        let state' = set_prog state h (ctx Syntax.Skip) in
        let hx = State.handler state' x in
        let state' =
          if norm hx.prog = Syntax.Release h.id then
            State.update state' { hx with prog = Syntax.Skip }
          else State.update state' { hx with abandoned = hx.abandoned @ [ h.id ] }
        in
        [ (TimedOut { client = h.id; target = x }, state') ]
      in
      rendezvous x @ timeout
    | _ -> [])

let steps mode state =
  List.concat_map
    (fun h ->
      program_steps mode state h @ service_steps state h @ sync_steps state h)
    state
