(* Bounded exhaustive exploration of the semantics' state space.

   [reachable] does a BFS over distinct states (structural equality) — used
   for deadlock detection and state counting.  [runs] does a DFS
   enumerating complete executions with their label sequences — used for
   checking the reasoning guarantees and for counting distinct observable
   interleavings (e.g. the two orders of Fig. 1). *)

type stats = {
  states : int;
  terminals : State.t list;
  deadlocks : State.t list;
  truncated : bool;
  reduced : bool;
}

let reachable ?(max_states = 200_000) mode init =
  let visited : (State.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let terminals = ref [] in
  let deadlocks = ref [] in
  let truncated = ref false in
  Hashtbl.replace visited init ();
  Queue.push init queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    match Step.steps mode s with
    | [] ->
      if State.is_terminal s then terminals := s :: !terminals
      else deadlocks := s :: !deadlocks
    | succs ->
      List.iter
        (fun (_, s') ->
          if not (Hashtbl.mem visited s') then
            if Hashtbl.length visited >= max_states then truncated := true
            else begin
              Hashtbl.replace visited s' ();
              Queue.push s' queue
            end)
        succs
  done;
  {
    states = Hashtbl.length visited;
    terminals = !terminals;
    deadlocks = !deadlocks;
    truncated = !truncated;
    reduced = false;
  }

type run = {
  labels : Step.label list;
  final : State.t;
  deadlocked : bool;
}

exception Limit_reached

(* Depth-first enumeration of complete runs.  [max_runs] bounds the number
   of runs collected; [max_depth] cuts off pathological depth (and marks
   the result truncated). *)
let runs ?(max_runs = 100_000) ?(max_depth = 10_000) mode init =
  let collected = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let emit r =
    collected := r :: !collected;
    incr count;
    if !count >= max_runs then raise Limit_reached
  in
  let rec go state acc depth =
    if depth > max_depth then truncated := true
    else
      match Step.steps mode state with
      | [] ->
        emit
          {
            labels = List.rev acc;
            final = state;
            deadlocked = not (State.is_terminal state);
          }
      | succs ->
        List.iter (fun (lbl, s') -> go s' (lbl :: acc) (depth + 1)) succs
  in
  (try go init [] 0 with Limit_reached -> truncated := true);
  (List.rev !collected, !truncated)

(* Distinct projections of complete (non-deadlocked) runs through [filter],
   e.g. "the actions executed on handler x, in order". *)
let observable_of_runs all ~filter =
  all
  |> List.filter (fun r -> not r.deadlocked)
  |> List.map (fun r -> List.filter_map filter r.labels)
  |> List.sort_uniq compare

let observable_traces ?max_runs ?max_depth mode init ~filter =
  let all, truncated = runs ?max_runs ?max_depth mode init in
  (observable_of_runs all ~filter, truncated)

(* -- Dynamic partial-order reduction (Flanagan–Godefroid style) ---------- *)

(* Participants of a label: the handler ids whose local state the
   transition reads or writes.  Two labels are dependent iff their
   participant sets intersect — same handler or a shared client; labels
   over disjoint handlers commute, so only one order of each such pair
   needs exploring. *)
let participants = function
  | Step.Reserved { client; targets } -> client :: targets
  | Step.Logged { client; target; _ } -> [ client; target ]
  | Step.Executed { handler; client = Some c; _ } -> [ handler; c ]
  | Step.Executed { handler; client = None; _ } -> [ handler ]
  | Step.Synced { client; target } -> [ client; target ]
  | Step.EndServed { handler; client } -> [ handler; client ]
  | Step.Failed { handler; client; _ }
  | Step.Shed { handler; client; _ }
  | Step.Poisoned { handler; client; _ } ->
    [ handler; client ]
  | Step.Raised { client; target; _ } -> [ client; target ]
  | Step.TimedOut { client; target } -> [ client; target ]
  | Step.Stepped ids -> ids

let dependent l1 l2 =
  let p1 = participants l1 in
  List.exists (fun h -> List.mem h p1) (participants l2)

(* The process(es) whose program/queue drives a transition — the
   "process id" of Flanagan–Godefroid.  Per handler, transitions are
   (almost) deterministic: clients step their sequential programs,
   servers pop the head of the head private queue.  An [Executed] with a
   client attached is ambiguous (a service step is driven by the
   handler, a §3.2 client-side query body by the client), so both are
   returned — a sound over-approximation. *)
let initiators = function
  | Step.Executed { handler; client = Some c; _ } -> [ handler; c ]
  | l -> ( match participants l with [] -> [] | p :: _ -> [ p ])

type dpor_entry = {
  d_state : State.t;
  d_enabled : (Step.label * State.t) array;
  mutable d_backtrack : int list; (* indices into [d_enabled] to explore *)
  mutable d_done : int list; (* indices already explored *)
  mutable d_chosen : Step.label option; (* transition taken on current path *)
  mutable d_sleep : Step.label list;
      (* sleep set: transitions whose interleavings from here are fully
         covered by an already-explored sibling branch — skipped, and a
         state with only sleeping transitions is a pruned leaf, not a
         deadlock *)
}

(* DFS with backtrack sets and sleep sets: instead of branching on every
   enabled transition at every state, start with one and add
   alternatives only where a later transition of the current path turns
   out to be dependent on the one taken (Flanagan–Godefroid backtrack
   sets); symmetrically, once a branch has been fully explored its
   transition goes to sleep in the remaining sibling branches — as long
   as only independent transitions execute, re-running it would only
   commute into an already-covered interleaving (Godefroid sleep sets).
   Transitions are identified across states by label equality.  The
   reduction is dynamic: no static independence declaration, only the
   participant sets of the labels actually taken. *)
let reduced ?(max_runs = 100_000) ?(max_depth = 10_000) mode init =
  let visited : (State.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let see s = if not (Hashtbl.mem visited s) then Hashtbl.replace visited s () in
  let collected = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let terminals = ref [] in
  let deadlocks = ref [] in
  let emit acc final =
    let deadlocked = not (State.is_terminal final) in
    (if deadlocked then begin
       if not (List.mem final !deadlocks) then deadlocks := final :: !deadlocks
     end
     else if not (List.mem final !terminals) then
       terminals := final :: !terminals);
    collected := { labels = List.rev acc; final; deadlocked } :: !collected;
    incr count;
    if !count >= max_runs then raise Limit_reached
  in
  let mk_entry s sleep =
    let enabled = Array.of_list (Step.steps mode s) in
    (* seed the backtrack set with the first non-sleeping transition; a
       state whose every enabled transition sleeps is a pruned leaf *)
    let first = ref None in
    Array.iteri
      (fun i (l, _) ->
        if !first = None && not (List.mem l sleep) then first := Some i)
      enabled;
    {
      d_state = s;
      d_enabled = enabled;
      d_backtrack = (match !first with Some i -> [ i ] | None -> []);
      d_done = [];
      d_chosen = None;
      d_sleep = sleep;
    }
  in
  (* Register a backtrack point for [lbl] at the deepest entry of the
     current path whose chosen transition is dependent with it.  If [lbl]
     itself is enabled there, schedule exactly it; otherwise schedule the
     enabled transitions of [lbl]'s initiating process(es) — each process
     is sequential, so its currently-enabled transition lies on every
     path from that point that eventually enables [lbl] (the F–G
     process-based backtrack rule).  Only if the initiators have nothing
     enabled either is every alternative scheduled. *)
  let add_backtrack path lbl =
    let rec go = function
      | [] -> ()
      | e :: older -> (
        match e.d_chosen with
        | Some l when dependent l lbl ->
          let add i =
            if not (List.mem i e.d_backtrack) then
              e.d_backtrack <- i :: e.d_backtrack
          in
          let idx = ref None in
          Array.iteri
            (fun i (l', _) -> if !idx = None && l' = lbl then idx := Some i)
            e.d_enabled;
          (match !idx with
          | Some i -> add i
          | None ->
            let inits = initiators lbl in
            let added = ref false in
            Array.iteri
              (fun i (l', _) ->
                if
                  List.exists (fun p -> List.mem p (initiators l')) inits
                then begin
                  add i;
                  added := true
                end)
              e.d_enabled;
            if not !added then
              e.d_backtrack <- List.init (Array.length e.d_enabled) Fun.id)
        | _ -> go older)
    in
    go path
  in
  let rec explore stack acc depth =
    match stack with
    | [] -> assert false
    | top :: path ->
      if Array.length top.d_enabled = 0 then emit acc top.d_state
      else begin
        Array.iter (fun (lbl, _) -> add_backtrack path lbl) top.d_enabled;
        let rec drain () =
          (* deeper exploration may grow [d_backtrack]; re-check after
             every child *)
          match
            List.find_opt
              (fun i -> not (List.mem i top.d_done))
              top.d_backtrack
          with
          | None -> ()
          | Some i ->
            top.d_done <- i :: top.d_done;
            let lbl, s' = top.d_enabled.(i) in
            if List.mem lbl top.d_sleep then drain ()
            else begin
              top.d_chosen <- Some lbl;
              see s';
              (* the child keeps sleeping only what stays independent of
                 the step taken — a dependent step wakes the transition *)
              let child_sleep =
                List.filter (fun z -> not (dependent z lbl)) top.d_sleep
              in
              (if depth >= max_depth then truncated := true
               else explore (mk_entry s' child_sleep :: stack) (lbl :: acc)
                      (depth + 1));
              (* the branch through [lbl] is fully covered: siblings need
                 not re-interleave it *)
              top.d_sleep <- lbl :: top.d_sleep;
              drain ()
            end
        in
        drain ()
      end
  in
  see init;
  (try explore [ mk_entry init [] ] [] 0 with Limit_reached -> truncated := true);
  ( List.rev !collected,
    {
      states = Hashtbl.length visited;
      terminals = !terminals;
      deadlocks = !deadlocks;
      truncated = !truncated;
      reduced = true;
    } )

(* Projection: actions executed on handler [x] (by the handler or by a
   synced client running a query body). *)
let on_handler x = function
  | Step.Executed { handler; action; _ } when handler = x -> Some action
  | _ -> None

(* BFS search for a reachable state satisfying [pred]. *)
let find_state ?(max_states = 200_000) mode init ~pred =
  let visited : (State.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let found = ref None in
  Hashtbl.replace visited init ();
  Queue.push init queue;
  (try
     while not (Queue.is_empty queue) do
       let s = Queue.pop queue in
       if pred s then begin
         found := Some s;
         raise Exit
       end;
       List.iter
         (fun (_, s') ->
           if
             (not (Hashtbl.mem visited s'))
             && Hashtbl.length visited < max_states
           then begin
             Hashtbl.replace visited s' ();
             Queue.push s' queue
           end)
         (Step.steps mode s)
     done
   with Exit -> ());
  !found

let exists_state ?max_states mode init ~pred =
  find_state ?max_states mode init ~pred <> None
