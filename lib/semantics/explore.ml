(* Bounded exhaustive exploration of the semantics' state space.

   [reachable] does a BFS over distinct states (structural equality) — used
   for deadlock detection and state counting.  [runs] does a DFS
   enumerating complete executions with their label sequences — used for
   checking the reasoning guarantees and for counting distinct observable
   interleavings (e.g. the two orders of Fig. 1). *)

type stats = {
  states : int;
  terminals : State.t list;
  deadlocks : State.t list;
  truncated : bool;
}

let reachable ?(max_states = 200_000) mode init =
  let visited : (State.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let terminals = ref [] in
  let deadlocks = ref [] in
  let truncated = ref false in
  Hashtbl.replace visited init ();
  Queue.push init queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    match Step.steps mode s with
    | [] ->
      if State.is_terminal s then terminals := s :: !terminals
      else deadlocks := s :: !deadlocks
    | succs ->
      List.iter
        (fun (_, s') ->
          if not (Hashtbl.mem visited s') then
            if Hashtbl.length visited >= max_states then truncated := true
            else begin
              Hashtbl.replace visited s' ();
              Queue.push s' queue
            end)
        succs
  done;
  {
    states = Hashtbl.length visited;
    terminals = !terminals;
    deadlocks = !deadlocks;
    truncated = !truncated;
  }

type run = {
  labels : Step.label list;
  final : State.t;
  deadlocked : bool;
}

exception Limit_reached

(* Depth-first enumeration of complete runs.  [max_runs] bounds the number
   of runs collected; [max_depth] cuts off pathological depth (and marks
   the result truncated). *)
let runs ?(max_runs = 100_000) ?(max_depth = 10_000) mode init =
  let collected = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let emit r =
    collected := r :: !collected;
    incr count;
    if !count >= max_runs then raise Limit_reached
  in
  let rec go state acc depth =
    if depth > max_depth then truncated := true
    else
      match Step.steps mode state with
      | [] ->
        emit
          {
            labels = List.rev acc;
            final = state;
            deadlocked = not (State.is_terminal state);
          }
      | succs ->
        List.iter (fun (lbl, s') -> go s' (lbl :: acc) (depth + 1)) succs
  in
  (try go init [] 0 with Limit_reached -> truncated := true);
  (List.rev !collected, !truncated)

(* Distinct projections of complete (non-deadlocked) runs through [filter],
   e.g. "the actions executed on handler x, in order". *)
let observable_traces ?max_runs ?max_depth mode init ~filter =
  let all, truncated = runs ?max_runs ?max_depth mode init in
  let traces =
    all
    |> List.filter (fun r -> not r.deadlocked)
    |> List.map (fun r -> List.filter_map filter r.labels)
    |> List.sort_uniq compare
  in
  (traces, truncated)

(* Projection: actions executed on handler [x] (by the handler or by a
   synced client running a query body). *)
let on_handler x = function
  | Step.Executed { handler; action; _ } when handler = x -> Some action
  | _ -> None

(* BFS search for a reachable state satisfying [pred]. *)
let find_state ?(max_states = 200_000) mode init ~pred =
  let visited : (State.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let found = ref None in
  Hashtbl.replace visited init ();
  Queue.push init queue;
  (try
     while not (Queue.is_empty queue) do
       let s = Queue.pop queue in
       if pred s then begin
         found := Some s;
         raise Exit
       end;
       List.iter
         (fun (_, s') ->
           if
             (not (Hashtbl.mem visited s'))
             && Hashtbl.length visited < max_states
           then begin
             Hashtbl.replace visited s' ();
             Queue.push s' queue
           end)
         (Step.steps mode s)
     done
   with Exit -> ());
  !found

let exists_state ?max_states mode init ~pred =
  find_state ?max_states mode init ~pred <> None
