(** The paper's example programs (Figs. 1, 5, 6) as explorer inputs. *)

val x : Syntax.hid
val y : Syntax.hid

val fig1 : State.t
val fig1_orders : Syntax.action list list
(** The two interleavings of actions on [x] the paper predicts. *)

val fig5 : State.t
val fig5_nested : State.t
val fig6 : State.t

val fig6_queries : State.t
(** Fig. 6 with a query on each client's inner handler: deadlock is
    reachable under SCOOP/Qs (§2.5). *)

val fig6_queries_outer : State.t
(** Fig. 6 with a query on each client's outer handler: deadlock-free. *)

val fail_call : State.t
(** A failing call followed by a query on the same handler: every run
    serves the failure ([Failed]) and then delivers it at the query's
    sync point ([Raised]). *)

val fail_call_no_sync : State.t
(** A failing call with no later sync point: terminates with no
    [Raised] transition — the dirt surfaces as [Poisoned] when the
    registration ends (the runtime's block-exit check). *)

val timeout_call : State.t
(** A call followed by a query under a deadline: runs split between
    [Synced] and [TimedOut], but every complete run executes both logged
    actions ({!timeout_call_trace}) — a timeout abandons the wait, never
    the work. *)

val timeout_call_trace : Syntax.action list
(** The single observable trace on [x] of {!timeout_call}. *)

val shed_overload : State.t
(** A gate call plus three more against a handler bounded at one pending
    request ([State.with_cap]): service sheds the oldest countable
    request while over the bound, so observable traces range from all
    four actions (fast handler) down to just the last (slow handler). *)

val poison_probe : State.t
(** A wedge call, a failing call, then a query: every complete run
    executes wedge and probe, marks the handler dirty ([Failed]) and
    delivers the failure at the query's sync point ([Raised]). *)

val fig5_mismatch : State.t -> bool
(** Reachable-state witness that Fig. 5's consistency can be violated
    (only with nested, non-atomic reservations). *)

val service_order : Syntax.hid -> Step.label -> Syntax.hid option
(** Projection: order in which registrations complete on a handler. *)
