(** The paper's example programs (Figs. 1, 5, 6) as explorer inputs. *)

val x : Syntax.hid
val y : Syntax.hid

val fig1 : State.t
val fig1_orders : Syntax.action list list
(** The two interleavings of actions on [x] the paper predicts. *)

val fig5 : State.t
val fig5_nested : State.t
val fig6 : State.t

val fig6_queries : State.t
(** Fig. 6 with a query on each client's inner handler: deadlock is
    reachable under SCOOP/Qs (§2.5). *)

val fig6_queries_outer : State.t
(** Fig. 6 with a query on each client's outer handler: deadlock-free. *)

val fail_call : State.t
(** A failing call followed by a query on the same handler: every run
    serves the failure ([Failed]) and then delivers it at the query's
    sync point ([Raised]). *)

val fail_call_no_sync : State.t
(** A failing call with no later sync point: terminates with no
    [Raised] transition (the dirt dies with the registration). *)

val fig5_mismatch : State.t -> bool
(** Reachable-state witness that Fig. 5's consistency can be violated
    (only with nested, non-atomic reservations). *)

val service_order : Syntax.hid -> Step.label -> Syntax.hid option
(** Projection: order in which registrations complete on a handler. *)
