(* Configurations of the operational semantics.

   A handler is the triple (h, q_h, s) of Fig. 3: identity, request queue
   (a queue of client-tagged private queues) and current program.  The
   [locked_by] field exists only for the lock-based variant of the original
   SCOOP semantics (Fig. 2), where a client owns the whole handler for the
   duration of its separate block.

   States are immutable; structural equality and hashing make them directly
   usable as keys during state-space exploration. *)

type pqueue = {
  client : Syntax.hid;
  items : Syntax.stmt list; (* FIFO: head executes first *)
}

type handler = {
  id : Syntax.hid;
  rq : pqueue list; (* queue of queues: head is being served *)
  prog : Syntax.stmt;
  locked_by : Syntax.hid option; (* lock-based semantics only *)
  dirty : (Syntax.hid * Syntax.action) list;
      (* clients whose logged call failed on this handler (first failing
         action each): SCOOP's dirty-processor state.  Set by the Fail
         service rule, cleared when the failure is raised at a sync point
         or the registration ends. *)
  abandoned : Syntax.hid list;
      (* clients that abandoned a timed wait on this handler: their
         pending release marker is discharged silently when served
         (timeout rule, see [Step.sync_steps]/[Step.service_steps]). *)
  cap : int option;
      (* admission bound: with [Some n], serving sheds the oldest
         countable request while more than [n] are pending (the
         runtime's bounded mailbox under [`Shed_oldest]). *)
}

type t = handler list (* sorted by id *)

let handler t id = List.find (fun h -> h.id = id) t

let mem t id = List.exists (fun h -> h.id = id) t

let update t h' = List.map (fun h -> if h.id = h'.id then h' else h) t

(* Initial state: the given root programs, plus passive handlers for every
   id mentioned only as a target. *)
let init roots =
  let mentioned =
    List.concat_map (fun (id, s) -> id :: Syntax.handlers_of s) roots
    |> List.sort_uniq Int.compare
  in
  List.map
    (fun id ->
      let prog =
        match List.assoc_opt id roots with Some s -> s | None -> Syntax.Skip
      in
      { id; rq = []; prog; locked_by = None; dirty = []; abandoned = []; cap = None })
    mentioned

(* Bound [target]'s admission: serving sheds the oldest countable request
   whenever more than [n] are pending (models a bounded mailbox under the
   [`Shed_oldest] overflow policy). *)
let with_cap t ~target n =
  let h = handler t target in
  update t { h with cap = Some n }

(* Append an empty private queue for [client] at the end of [target]'s
   request queue (the separate rule). *)
let reserve t ~client ~target =
  let h = handler t target in
  update t { h with rq = h.rq @ [ { client; items = [] } ] }

(* Append [item] to the *last* private queue of [client] in [target]'s
   request queue — the paper is explicit that lookup and update act on the
   last occurrence, which is the one the client is currently using. *)
let log t ~client ~target item =
  let h = handler t target in
  let rec add_last = function
    | [] -> invalid_arg "State.log: client not registered"
    | [ pq ] when pq.client = client -> [ { pq with items = pq.items @ [ item ] } ]
    | pq :: rest ->
      if List.exists (fun p -> p.client = client) rest then pq :: add_last rest
      else if pq.client = client then
        { pq with items = pq.items @ [ item ] } :: rest
      else invalid_arg "State.log: client not registered"
  in
  update t { h with rq = add_last h.rq }

let log_many t ~client ~target items =
  List.fold_left (fun t item -> log t ~client ~target item) t items

let is_idle h = h.prog = Syntax.Skip

let is_terminal t =
  List.for_all
    (fun h -> is_idle h && h.rq = [] && h.locked_by = None && h.abandoned = [])
    t

let pp_pqueue ppf pq =
  Format.fprintf ppf "%d:[%a]" pq.client
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Syntax.pp)
    pq.items

let pp_handler ppf h =
  Format.fprintf ppf "@[<h>(%d, {%a}%s%s%s%s, %a)@]" h.id
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
       pp_pqueue)
    h.rq
    (match h.locked_by with
    | Some c -> Printf.sprintf " locked-by:%d" c
    | None -> "")
    (match h.dirty with
    | [] -> ""
    | ds ->
      " dirty:"
      ^ String.concat ","
          (List.map (fun (c, a) -> Printf.sprintf "%d:%s" c a) ds))
    (match h.abandoned with
    | [] -> ""
    | cs ->
      " abandoned:" ^ String.concat "," (List.map string_of_int cs))
    (match h.cap with
    | None -> ""
    | Some n -> Printf.sprintf " cap:%d" n)
    Syntax.pp h.prog

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_handler)
    t
