(* Regenerates every table and figure of the paper's evaluation:

     table1 / fig16  — optimization comparison, parallel tasks (§4.2)
     table2 / fig17  — optimization comparison, concurrent tasks (§4.3)
     table3          — language characteristics (§5.1)
     table4 / fig18  — language comparison, parallel tasks (§5.2.1)
     fig19           — speedup curves (§5.2.2; simulated, see DESIGN.md)
     table5 / fig20  — language comparison, concurrent tasks (§5.3)
     summary         — geometric means (§4.4, §5.4)
     eve             — EVE retrofit (§4.5)
     micro           — Bechamel micro-benchmarks of the runtime primitives

   Measured rows run at a container-sized scale (see --scale/--nr/...);
   paper rows are printed alongside for shape comparison. *)

module H = Qs_benchmarks.Harness
module Report = Qs_benchmarks.Report
module PD = Qs_benchmarks.Paper_data

let all_artifacts =
  [
    "table1"; "fig16"; "table2"; "fig17"; "table3"; "table4"; "fig18";
    "fig19"; "table5"; "fig20"; "summary"; "eve"; "switches"; "micro";
    "pipeline"; "timeout"; "pools"; "alloc"; "conformance"; "remote"; "load";
  ]

(* §4.3 attributes the QoQ gains to "fewer context switches, since the
   private queues require only one context switch to wait for a query to
   return" vs three for the lock-based runtime.  The scheduler counters
   measure this directly: run a query-heavy workload under each
   configuration and report fiber dispatches and handoffs per query. *)
(* The query-heavy workload behind the context-switch accounting and the
   instrumented probe: [clients] fibers each doing [rounds] command+query
   rounds against one handler. *)
let query_workload rt ~rounds ~clients =
  let h = Scoop.Runtime.processor rt in
  let cell = Scoop.Shared.create h (ref 0) in
  let latch = Qs_sched.Latch.create clients in
  for _ = 1 to clients do
    Qs_sched.Sched.spawn (fun () ->
      for _ = 1 to rounds do
        Scoop.Runtime.separate rt h (fun reg ->
          Scoop.Shared.apply reg cell incr;
          ignore (Scoop.Shared.get reg cell (fun r -> !r) : int))
      done;
      Qs_sched.Latch.count_down latch)
  done;
  Qs_sched.Latch.wait latch

let switches (s : H.scale) =
  print_newline ();
  print_endline
    "§4.3 — context-switch accounting: scheduler counters for a \
     query-heavy workload (per query round)";
  print_endline (String.make 72 '-');
  Printf.printf "%-10s %12s %12s %12s %12s\n" "config" "dispatches" "handoffs"
    "steals" "parks";
  let rounds = max 200 (s.H.m / 4) and clients = 8 in
  List.iter
    (fun config ->
      let captured = ref None in
      Scoop.Runtime.run ~domains:s.H.domains ~config
        ~on_counters:(fun c -> captured := Some c)
        (fun rt -> query_workload rt ~rounds ~clients);
      match !captured with
      | Some c ->
        let per = float_of_int (clients * rounds) in
        Printf.printf "%-10s %12.2f %12.2f %12.2f %12.2f\n"
          config.Scoop.Config.name
          (float_of_int c.Qs_sched.Sched.c_executed /. per)
          (float_of_int c.Qs_sched.Sched.c_handoffs /. per)
          (float_of_int c.Qs_sched.Sched.c_steals /. per)
          (float_of_int c.Qs_sched.Sched.c_parks /. per)
      | None -> ())
    Scoop.Config.presets

let fig19 () =
  print_newline ();
  print_endline
    "Fig. 19 — speedup over single-core performance (simulated from the \
     calibrated model; 1 physical core here, see DESIGN.md)";
  print_endline (String.make 72 '-');
  let cores = [ 1; 2; 4; 8; 16; 32 ] in
  List.iter
    (fun task ->
      Printf.printf "%s:\n" task;
      List.iter
        (fun lang ->
          match Qs_sim.Model.speedups ~task ~lang ~cores () with
          | None -> ()
          | Some curve ->
            Printf.printf "  %-8s" lang;
            List.iter (fun (c, s) -> Printf.printf "  %2d:%5.1fx" c s) curve;
            print_newline ())
        PD.languages;
      (* compute-only curves, as in the paper's figure *)
      List.iter
        (fun lang ->
          match
            Qs_sim.Model.speedups ~variant:`Compute ~task ~lang ~cores ()
          with
          | None -> ()
          | Some curve ->
            Printf.printf "  %-8s" (lang ^ " (C)");
            List.iter (fun (c, s) -> Printf.printf "  %2d:%5.1fx" c s) curve;
            print_newline ())
        PD.languages)
    PD.parallel_tasks

let table4_simulated () =
  print_newline ();
  print_endline
    "Fig. 18 / Table 4 — simulated 32-core totals from the calibrated model";
  print_endline (String.make 72 '-');
  Printf.printf "%-22s" "";
  List.iter (fun l -> Printf.printf "%10s" l) PD.languages;
  print_newline ();
  List.iter
    (fun task ->
      Printf.printf "%-22s" task;
      List.iter
        (fun lang ->
          match Qs_sim.Model.predict ~task ~lang ~cores:32 () with
          | Some t -> Printf.printf "%10.2f" t
          | None -> Printf.printf "%10s" "-")
        PD.languages;
      print_newline ())
    PD.parallel_tasks

(* The batched handler loop's efficiency, measured rather than timed: how
   many requests each mailbox structure delivers per handler wakeup on a
   prodcons-style workload.  Mean batch 1.00 is the old
   one-request-per-park loop; larger amortizes park/unpark transitions. *)
let mailbox_batching () =
  print_newline ();
  print_endline
    "mailbox drain batching: requests delivered per handler wakeup \
     (prodcons-style, 4 producers x 200 registrations)";
  print_endline (String.make 72 '-');
  Printf.printf "%-24s %10s %10s %12s\n" "mailbox" "wakeups" "requests"
    "mean batch";
  List.map
    (fun (mailbox, batch) ->
      let s =
        Scoop.Runtime.run ~domains:2
          ~config:
            Scoop.Config.(qoq |> with_mailbox mailbox |> with_batch batch)
          (fun rt ->
          let buffer = Scoop.Runtime.processor rt in
          let queue = Scoop.Shared.create buffer (Queue.create ()) in
          let producers = 4 and per = 200 in
          let latch = Qs_sched.Latch.create producers in
          for i = 1 to producers do
            Qs_sched.Sched.spawn (fun () ->
              for k = 1 to per do
                Scoop.Runtime.separate rt buffer (fun reg ->
                  Scoop.Shared.apply reg queue (fun q ->
                    Queue.push ((i * per) + k) q);
                  Scoop.Shared.apply reg queue (fun q ->
                    ignore (Queue.pop q : int)))
              done;
              Qs_sched.Latch.count_down latch)
          done;
          Qs_sched.Latch.wait latch;
          (* Sync so every prior registration is drained before reading. *)
          ignore
            (Scoop.Runtime.separate rt buffer (fun reg ->
               Scoop.Shared.get reg queue Queue.length)
              : int);
          Scoop.Stats.snapshot (Scoop.Runtime.stats rt))
      in
      let name =
        match mailbox with `Qoq -> "qoq" | `Direct -> "direct"
      in
      Printf.printf "%-24s %10d %10d %12.2f\n"
        (Printf.sprintf "%s batch=%d" name batch)
        s.Scoop.Stats.s_handler_wakeups s.Scoop.Stats.s_batched_requests
        (Scoop.Stats.mean_batch s);
      (name, batch, s))
    [ (`Qoq, 1); (`Qoq, 16); (`Qoq, 64); (`Direct, 1); (`Direct, 16);
      (`Direct, 64) ]

(* -- promise-pipelining ablation -------------------------------------------- *)

(* The same fan-in pulls issued as sequential blocking queries vs as
   [query_async] promises forced after the fan-out.  Blocking pulls
   serialize the handlers: handler i+1's pull does not even start until
   handler i's answer is back.  The pipelined variant logs all k queries
   first, so the handlers compute their answers concurrently and the
   client pays for the slowest one once.  Runs on at least 2 domains so
   the overlap is physical, not just interleaved. *)
let pipeline (s : H.scale) =
  let module BT = Qs_benchmarks.Bench_types in
  let module CW = Qs_workloads.Cowichan in
  let handlers = max 2 (min 8 s.H.workers) in
  let domains = max 2 s.H.domains in
  let config = Scoop.Config.all in
  let rounds = max 20 (s.H.m / 16) in
  let items = 256 in
  (* prodcons fan-in: k handler-owned queues are filled by asynchronous
     calls; the client repeatedly pulls a checksum of every queue. *)
  let prodcons ~pipelined () =
    Scoop.Runtime.run ~domains ~config (fun rt ->
      let stats = Scoop.Runtime.stats rt in
      let before = Scoop.Stats.snapshot stats in
      let hs = Scoop.Runtime.processors rt handlers in
      let queues = List.map (fun h -> (h, Queue.create ())) hs in
      List.iter
        (fun (h, q) ->
          Scoop.Runtime.separate rt h (fun reg ->
            for i = 1 to items do
              Scoop.Registration.call reg (fun () -> Queue.push i q)
            done))
        queues;
      let checksum = ref 0 in
      let pull q () = Queue.fold (fun a x -> a + (x * x)) 0 q in
      for _ = 1 to rounds do
        Scoop.Runtime.separate_list rt hs (fun regs ->
          if pipelined then
            List.map2
              (fun reg (_, q) -> Scoop.Registration.query_async reg (pull q))
              regs queues
            |> List.iter (fun p ->
                 checksum := !checksum + Scoop.Promise.await p)
          else
            List.iter2
              (fun reg (_, q) ->
                checksum := !checksum + Scoop.Registration.query reg (pull q))
              regs queues)
      done;
      (!checksum, Scoop.Stats.diff (Scoop.Stats.snapshot stats) before))
  in
  (* Cowichan chain fragment (examples/pipeline.ml writ large): workers
     generate matrix chunks behind asynchronous calls, the client pulls
     per-chunk histograms and reduces them to the thresh threshold. *)
  let cowichan ~pipelined () =
    Scoop.Runtime.run ~domains ~config (fun rt ->
      let stats = Scoop.Runtime.stats rt in
      let before = Scoop.Stats.snapshot stats in
      let nr = s.H.nr and seed = s.H.seed in
      let chunks =
        List.map
          (fun (lo, hi) ->
            let proc = Scoop.Runtime.processor rt in
            (proc, lo, hi, Array.make ((hi - lo) * nr) 0))
          (BT.split nr handlers)
      in
      List.iter
        (fun (proc, lo, hi, arr) ->
          Scoop.Runtime.separate rt proc (fun reg ->
            Scoop.Registration.call reg (fun () ->
              CW.randmat_chunk ~seed ~nr ~lo ~hi arr)))
        chunks;
      let hist = Array.make CW.modulus 0 in
      let merge h = Array.iteri (fun v n -> hist.(v) <- hist.(v) + n) h in
      if pipelined then
        List.map
          (fun (proc, lo, hi, arr) ->
            Scoop.Runtime.separate rt proc (fun reg ->
              Scoop.Registration.query_async reg (fun () ->
                CW.thresh_hist ~nr arr ~lo:0 ~hi:(hi - lo))))
          chunks
        |> List.iter (fun p -> merge (Scoop.Promise.await p))
      else
        List.iter
          (fun (proc, lo, hi, arr) ->
            Scoop.Runtime.separate rt proc (fun reg ->
              merge
                (Scoop.Registration.query reg (fun () ->
                   CW.thresh_hist ~nr arr ~lo:0 ~hi:(hi - lo)))))
          chunks;
      ( CW.thresh_threshold ~hist ~total:(nr * nr) ~p:s.H.p,
        Scoop.Stats.diff (Scoop.Stats.snapshot stats) before ))
  in
  (* Dynamic sync elision (§3.4.1, handler side): one handler, one call
     plus one result pull per round, the pull forced {e inside} the
     block.  Blocking mode pays the full query round trip every round.
     Pipelined mode issues [query_async] and forces immediately: the
     handler reaches the pipelined request with the registration's log
     drained, marks the promise, and the force doubles as the sync —
     counted under [syncs_elided] (asserted nonzero by CI). *)
  let elision ~pipelined () =
    Scoop.Runtime.run ~domains ~config (fun rt ->
      let stats = Scoop.Runtime.stats rt in
      let before = Scoop.Stats.snapshot stats in
      let h = Scoop.Runtime.processor rt in
      let r = ref 0 in
      let total = ref 0 in
      for _ = 1 to rounds do
        Scoop.Runtime.separate rt h (fun reg ->
          Scoop.Registration.call reg (fun () -> incr r);
          if pipelined then begin
            let p = Scoop.Registration.query_async reg (fun () -> !r) in
            total := !total + Scoop.Promise.await p
          end
          else total := !total + Scoop.Registration.query reg (fun () -> !r))
      done;
      (!total, Scoop.Stats.diff (Scoop.Stats.snapshot stats) before))
  in
  print_newline ();
  Printf.printf
    "promise pipelining: blocking queries vs query_async fan-out (%d \
     handlers, %d domains, median of %d)\n"
    handlers domains (max 1 s.H.reps);
  print_endline (String.make 72 '-');
  Printf.printf "%-10s %-10s %10s %10s %8s %8s %8s %8s\n" "workload" "mode"
    "seconds" "promises" "ready" "blocked" "overlap" "elided";
  let bench name workload =
    let variant pipelined mode =
      let runs =
        List.init (max 1 s.H.reps) (fun _ ->
          let (value, snap), secs = BT.timed (workload ~pipelined) in
          (secs, value, snap))
      in
      let secs = BT.median (List.map (fun (t, _, _) -> t) runs) in
      (* Counters come from the first rep; every rep does identical work. *)
      let _, value, snap = List.hd runs in
      Printf.printf "%-10s %-10s %10.4f %10d %8d %8d %8.2f %8d\n" name mode
        secs snap.Scoop.Stats.s_promises_created
        snap.Scoop.Stats.s_promises_ready snap.Scoop.Stats.s_promises_blocked
        (Scoop.Stats.overlap_ratio snap) snap.Scoop.Stats.s_syncs_elided;
      (value, (name, mode, secs, snap))
    in
    let vb, row_b = variant false "blocking" in
    let vp, row_p = variant true "pipelined" in
    if vb <> vp then
      Printf.printf "  WARNING: %s blocking/pipelined results differ (%d vs %d)\n"
        name vb vp;
    [ row_b; row_p ]
  in
  let prodcons_rows = bench "prodcons" prodcons in
  let cowichan_rows = bench "cowichan" cowichan in
  let elision_rows = bench "elision" elision in
  prodcons_rows @ cowichan_rows @ elision_rows

(* -- timeout & backpressure ablation ---------------------------------------- *)

(* Three questions about the time-aware request path:

   1. What does a deadline cost when nothing ever times out?  The same
      call+query round trip with and without a generous [?timeout] — the
      timed variant arms a per-round timer and cancels it on fulfilment.
   2. Do the timeout and shedding paths actually fire under overload?  A
      wedged handler behind a bounded [`Shed_oldest] mailbox: the timed
      query must expire and the flood must shed (CI asserts the probe's
      [timeouts_fired]/[shed_requests]/[timer_arms] are nonzero).
   3. What does the socket transport allocate per message after the
      in-place decode (no [Bytes.sub] staging copy)? *)
let timeout_ablation (s : H.scale) =
  let module BT = Qs_benchmarks.Bench_types in
  print_newline ();
  print_endline
    "timeout ablation: deadline overhead, forced-overload probe, transport \
     allocation";
  print_endline (String.make 72 '-');
  let rounds = max 500 s.H.m in
  let round_trip ?timeout () =
    Scoop.Runtime.run ~domains:1 (fun rt ->
      let h = Scoop.Runtime.processor rt in
      let r = ref 0 in
      Scoop.Runtime.separate rt h (fun reg ->
        for _ = 1 to rounds do
          Scoop.Registration.call reg (fun () -> incr r);
          ignore (Scoop.Registration.query ?timeout reg (fun () -> !r) : int)
        done))
  in
  let med f =
    BT.median (List.init (max 1 s.H.reps) (fun _ -> snd (BT.timed f)))
  in
  let plain = med (fun () -> round_trip ()) in
  let timed = med (fun () -> round_trip ~timeout:60.0 ()) in
  let ns secs = secs *. 1e9 /. float_of_int rounds in
  Printf.printf "%-36s %10.0f ns/round\n" "call+query, no deadline" (ns plain);
  Printf.printf "%-36s %10.0f ns/round\n" "call+query, generous deadline"
    (ns timed);
  Printf.printf "%-36s %10.0f ns/round\n" "deadline arm+cancel overhead"
    (ns (timed -. plain));
  let probe =
    Scoop.Runtime.run ~domains:2
      ~config:Scoop.Config.(qoq |> with_bound 4 |> with_overflow `Shed_oldest)
      (fun rt ->
      let h = Scoop.Runtime.processor rt in
      (try
         Scoop.Runtime.separate rt h (fun reg ->
           (* Wedge the handler, then let a short deadline expire. *)
           Scoop.Registration.call reg (fun () -> Qs_sched.Sched.sleep 0.05);
           (match Scoop.Registration.query ~timeout:0.005 reg (fun () -> 0) with
           | _ -> ()
           | exception Scoop.Timeout -> ());
           (* Flood the bounded mailbox: admissions past the bound shed
              the oldest backlog (and the shed failures poison the
              registration, caught below). *)
           for _ = 1 to 64 do
             Scoop.Registration.call reg (fun () -> ())
           done;
           (* Sync so the handler drains (and sheds) the whole flood
              before the stats are read; the shed poison surfaces here. *)
           Scoop.Registration.sync reg)
       with
      | Scoop.Handler_failure (_, Scoop.Overloaded _) | Scoop.Overloaded _ ->
        ());
      Scoop.Stats.assoc (Scoop.Runtime.stats rt))
  in
  let pv = Qs_obs.Counter.value probe in
  Printf.printf
    "overload probe: %d timer arms, %d timeouts fired, %d deadlines \
     exceeded, %d shed requests\n"
    (pv "timer_arms") (pv "timeouts_fired") (pv "deadline_exceeded")
    (pv "shed_requests");
  let alloc_per_msg =
    Qs_sched.Sched.run ~domains:1 (fun () ->
      let q = Qs_remote.Socket_queue.create () in
      Fun.protect
        ~finally:(fun () -> Qs_remote.Socket_queue.destroy q)
        (fun () ->
          let n = 2000 in
          let payload = Array.init 64 Fun.id in
          let w0 = Gc.minor_words () in
          Qs_sched.Sched.spawn (fun () ->
            for _ = 1 to n do
              Qs_remote.Socket_queue.enqueue q payload
            done;
            Qs_remote.Socket_queue.close_writer q);
          let rec drain k =
            match Qs_remote.Socket_queue.dequeue q with
            | Some (_ : int array) -> drain (k + 1)
            | None -> k
          in
          let received = drain 0 in
          let words = Gc.minor_words () -. w0 in
          assert (received = n);
          words /. float_of_int n))
  in
  Printf.printf "%-36s %10.0f minor words/msg (64-int payload)\n"
    "socket transport allocation" alloc_per_msg;
  (ns plain, ns timed, probe, alloc_per_msg)

(* -- scheduler-pool ablation ------------------------------------------------- *)

(* Two questions about the sharded injection path and elastic pools:

   1. Injection contention: the same cross-domain push/pop flood through
      the sharded MPMC at one shard (every producer funnels into a single
      queue — the pre-pool global-inject shape) vs eight shards (the
      per-worker layout the scheduler runs).  Identical code, only the
      shard count moves, so the row pair isolates the sharding itself.
   2. What does pinning cost?  The same call-heavy handler workload with
      the handler riding the default pool vs pinned to a dedicated pool
      that starts empty — the pinned run pays pool migration and the
      elastic absorb/shrink machinery on every park/unpark cycle.

   Plus a forced-imbalance probe for the per-pool counters: a pinned
   handler flooded from default-pool clients.  CI asserts the probe's
   [pool_migrations] is nonzero — idle workers really do move. *)
let pools_ablation (s : H.scale) =
  let module BT = Qs_benchmarks.Bench_types in
  print_newline ();
  print_endline
    "pools ablation: sharded injection, pinned handlers, per-pool counters";
  print_endline (String.make 72 '-');
  (* Sampled like the Bechamel rows (which collect ~100+ measurements),
     not like the seconds-long macro tables: 3 samples gave the pools
     rows meaningless stddevs in the committed baseline. *)
  let reps = max 128 s.H.reps in
  let row name ~ops f =
    let samples =
      List.init reps (fun _ -> snd (BT.timed f) *. 1e9 /. float_of_int ops)
    in
    let n = List.length samples in
    let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int n in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 samples
      /. float_of_int n
    in
    Printf.printf "%-36s %10.0f ns/op\n" name mean;
    (Printf.sprintf "qs:%s" name, mean, sqrt var, n)
  in
  (* 4 producer domains flood the queue while this domain drains it. *)
  let inject_flood ~shards () =
    let producers = 4 and per = 5_000 in
    let q = Qs_queues.Sharded_mpmc.create_sharded ~shards () in
    let doms =
      List.init producers (fun _ ->
        Domain.spawn (fun () ->
          for i = 1 to per do
            Qs_queues.Sharded_mpmc.push q i
          done))
    in
    let budget = producers * per in
    let popped = ref 0 in
    while !popped < budget do
      match Qs_queues.Sharded_mpmc.pop q with
      | Some _ -> incr popped
      | None -> Domain.cpu_relax ()
    done;
    List.iter Domain.join doms
  in
  let handler_flood ?(pools = []) ?pool () =
    Scoop.Runtime.run ~domains:2
      ~config:Scoop.Config.(qoq |> with_pools pools)
      (fun rt ->
      let h = Scoop.Runtime.processor ?pool rt in
      let cell = Scoop.Shared.create h (ref 0) in
      for _ = 1 to 1000 do
        Scoop.Runtime.separate rt h (fun reg ->
          Scoop.Shared.apply reg cell incr)
      done;
      Scoop.Runtime.separate rt h (fun reg ->
        ignore (Scoop.Shared.get reg cell (fun r -> !r) : int)))
  in
  (* Sequential lets: list literals evaluate right-to-left, which would
     reverse the printed order. *)
  let r1 = row "pools:inject-shard1-20000" ~ops:20_000 (inject_flood ~shards:1) in
  let r2 = row "pools:inject-shard8-20000" ~ops:20_000 (inject_flood ~shards:8) in
  let r3 =
    row "pools:handler-default-1000" ~ops:1_000 (fun () -> handler_flood ())
  in
  let r4 =
    row "pools:handler-pinned-1000" ~ops:1_000 (fun () ->
      handler_flood ~pools:[ "svc" ] ~pool:"svc" ())
  in
  let rows = [ r1; r2; r3; r4 ] in
  (* Forced imbalance: all the work lives in the pinned handler's pool,
     all the clients in default — the hot pool has to absorb workers. *)
  let counters =
    Scoop.Runtime.run ~domains:2
      ~config:Scoop.Config.(qoq |> with_pools [ "hot" ])
      (fun rt ->
      let h = Scoop.Runtime.processor ~pool:"hot" rt in
      let cell = Scoop.Shared.create h (ref 0) in
      let clients = 4 and per = max 200 (s.H.m / 4) in
      let latch = Qs_sched.Latch.create clients in
      for _ = 1 to clients do
        Qs_sched.Sched.spawn (fun () ->
          for _ = 1 to per do
            Scoop.Runtime.separate rt h (fun reg ->
              Scoop.Shared.apply reg cell incr)
          done;
          Qs_sched.Latch.count_down latch)
      done;
      Qs_sched.Latch.wait latch;
      Scoop.Runtime.separate rt h (fun reg ->
        ignore (Scoop.Shared.get reg cell (fun r -> !r) : int));
      Scoop.Runtime.pool_counters ())
  in
  Printf.printf "imbalance probe:";
  List.iter
    (fun (k, v) ->
      if String.length k < 5 || String.sub k 0 5 <> "pool." then
        Printf.printf " %s=%d" k v)
    counters;
  print_newline ();
  (rows, counters)

(* -- remote-endpoint ablation ------------------------------------------------ *)

(* Distributed-runtime handler state: remote closures execute against the
   node's module-level globals, so the benchmark's counter lives here. *)
let remote_cell = Atomic.make 0

(* What does moving a processor behind a socket cost, and does promise
   pipelining buy the latency back?  Three rows over the same 1000-query
   stream:

   - [remote:qoq-1000]            — in-process qoq endpoint (baseline)
   - [remote:qoq-vs-socket-1000]  — same blocking queries against a node
                                    over a unix socket: every query pays
                                    a full marshal + syscall round trip
   - [remote:socket-pipelined-1000] — the same stream as pipelined
                                    [query_async] promises: requests
                                    overlap in flight, so the per-query
                                    cost collapses toward the transport's
                                    throughput bound (CI asserts this row
                                    beats the blocking one). *)
let remote_ablation (s : H.scale) =
  let module BT = Qs_benchmarks.Bench_types in
  print_newline ();
  print_endline
    "remote ablation: in-process vs socket endpoint, blocking vs pipelined";
  print_endline (String.make 72 '-');
  let rounds = 1000 in
  let blocking rt =
    let p = Scoop.Runtime.processor rt in
    Scoop.Runtime.separate rt p (fun reg ->
      for _ = 1 to rounds do
        ignore
          (Scoop.Registration.query reg (fun () ->
             Atomic.fetch_and_add remote_cell 1)
            : int)
      done)
  in
  let pipelined rt =
    let p = Scoop.Runtime.processor rt in
    Scoop.Runtime.separate rt p (fun reg ->
      List.init rounds (fun _ ->
        Scoop.Registration.query_async reg (fun () ->
          Atomic.fetch_and_add remote_cell 1))
      |> List.iter (fun pr -> ignore (Scoop.Promise.await pr : int)))
  in
  let reps = max 8 (s.H.reps / 2) in
  let row name f =
    let samples =
      List.init reps (fun _ ->
        snd (BT.timed f) *. 1e9 /. float_of_int rounds)
    in
    let n = List.length samples in
    let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int n in
    let var =
      List.fold_left
        (fun acc x -> acc +. ((x -. mean) *. (x -. mean)))
        0.0 samples
      /. float_of_int n
    in
    Printf.printf "%-36s %10.0f ns/op\n" name mean;
    (Printf.sprintf "qs:%s" name, mean, sqrt var, n)
  in
  let r_local =
    row "remote:qoq-1000" (fun () ->
      Scoop.Runtime.run ~domains:1 ~config:Scoop.Config.qoq blocking)
  in
  (* One self-hosted node serves every remote rep: connections are
     per-rep, the node is not. *)
  let path =
    Printf.sprintf "%s/qs_bench_%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  let addr = Scoop.Config.Unix_sock path in
  let node = Domain.spawn (fun () -> Scoop.Remote.listen addr) in
  let remotely f () =
    Scoop.Runtime.run
      ~config:(Scoop.Remote.connect [ addr ])
      (fun rt -> f rt)
  in
  let r_blocking = row "remote:qoq-vs-socket-1000" (remotely blocking) in
  let r_pipelined = row "remote:socket-pipelined-1000" (remotely pipelined) in
  Scoop.Runtime.run
    ~config:(Scoop.Remote.connect [ addr ])
    Scoop.Runtime.shutdown_nodes;
  Domain.join node;
  let mean (_, m, _, _) = m in
  Printf.printf
    "pipelining recovered %.1fx of the socket round-trip cost\n"
    (mean r_blocking /. mean r_pipelined);
  [ r_local; r_blocking; r_pipelined ]

(* -- per-request allocation probe ------------------------------------------- *)

(* What does one request allocate?  The call+query round-trip workload
   on the qoq preset, measured with GC word deltas (the same idiom as
   the transport row of the timeout ablation), with the flat-request
   pool on (the default) and forced off ([~pooling:false]) so the
   delta isolates the pooled flat representation.  One domain: client
   and handler then allocate on the measured domain, so the minor-word
   delta is the whole story. *)
let allocation_probe (s : H.scale) =
  print_newline ();
  print_endline
    "request allocation: GC words per request, call+query round trips on \
     the qoq preset";
  print_endline (String.make 72 '-');
  let rounds = max 2_000 s.H.m in
  let measure ~pooling =
    Scoop.Runtime.run ~domains:1
      ~config:Scoop.Config.(qoq |> with_pooling pooling)
      (fun rt ->
      let h = Scoop.Runtime.processor rt in
      let stats = Scoop.Runtime.stats rt in
      let r = ref 0 in
      Scoop.Runtime.separate rt h (fun reg ->
        (* Warm-up: fault in the pool, the private queue and the code
           paths before the window opens. *)
        for _ = 1 to 128 do
          Scoop.Registration.call reg (fun () -> incr r);
          ignore (Scoop.Registration.query reg (fun () -> !r) : int)
        done;
        let before = Scoop.Stats.snapshot stats in
        let minor0 = Gc.minor_words () in
        let major0 = (Gc.quick_stat ()).Gc.major_words in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to rounds do
          Scoop.Registration.call reg (fun () -> incr r);
          ignore (Scoop.Registration.query reg (fun () -> !r) : int)
        done;
        let secs = Unix.gettimeofday () -. t0 in
        let minor = Gc.minor_words () -. minor0 in
        let major = (Gc.quick_stat ()).Gc.major_words -. major0 in
        let d = Scoop.Stats.diff (Scoop.Stats.snapshot stats) before in
        let requests = float_of_int (2 * rounds) in
        ( minor /. requests,
          major /. requests,
          secs *. 1e9 /. requests,
          d.Scoop.Stats.s_requests_flat,
          d.Scoop.Stats.s_requests_pooled,
          d.Scoop.Stats.s_pool_misses )))
  in
  (* Best-of-reps on each side: per-request allocation is deterministic,
     the timing is the quietest observed interleaving. *)
  let best side =
    List.init (max 3 s.H.reps) (fun _ -> measure ~pooling:side)
    |> List.fold_left
         (fun acc ((_, _, ns, _, _, _) as m) ->
           match acc with
           | Some ((_, _, best_ns, _, _, _) as b) ->
             Some (if ns < best_ns then m else b)
           | None -> Some m)
         None
    |> Option.get
  in
  let pooled_minor, pooled_major, pooled_ns, p_flat, p_pooled, p_miss =
    best true
  in
  let plain_minor, plain_major, plain_ns, _, _, _ = best false in
  Printf.printf
    "%-36s %10.1f minor + %6.1f major words, %6.0f ns/request (%d flat: %d \
     pooled, %d misses)\n"
    "pooled flat requests (default)" pooled_minor pooled_major pooled_ns
    p_flat p_pooled p_miss;
  Printf.printf "%-36s %10.1f minor + %6.1f major words, %6.0f ns/request\n"
    "pooling disabled" plain_minor plain_major plain_ns;
  ( (pooled_minor, pooled_major, pooled_ns),
    (plain_minor, plain_major, plain_ns),
    2 * rounds )

(* -- trace conformance probe ------------------------------------------------- *)

(* Run the elision workload traced — with several concurrent clients —
   and replay the recorded SCOOP events through the conformance
   automaton of the operational semantics (via Qs_conform, which
   partitions the merged stream per registration before checking): the
   handler never executes a call before it was logged, and every
   dynamically elided sync happened in the synced state (a round trip
   established the drained log and nothing was logged since).  This is
   the evidence that the pooled fast path and the handler-side elision
   preserve the reasoning rules.

   The partitioning matters: this probe used to feed the merged
   multi-client stream straight into Qs_semantics.Replay, whose
   automaton is only sound per single-client stream — under concurrency
   the interleaved log watermarks made the check vacuous at best. *)
let conformance_probe (s : H.scale) =
  print_newline ();
  print_endline
    "trace conformance: concurrent elision workload replayed through the \
     semantics automaton (per-registration partitions)";
  print_endline (String.make 72 '-');
  let sink = Qs_obs.Sink.create () in
  let rounds = max 50 (s.H.m / 8) in
  let clients = 4 in
  let elided =
    Scoop.Runtime.run ~domains:2 ~obs:sink (fun rt ->
      let h = Scoop.Runtime.processor rt in
      let r = ref 0 in
      let latch = Qs_sched.Latch.create clients in
      for _ = 1 to clients do
        Qs_sched.Sched.spawn (fun () ->
          for _ = 1 to rounds do
            Scoop.Runtime.separate rt h (fun reg ->
              Scoop.Registration.call reg (fun () -> incr r);
              let p = Scoop.Registration.query_async reg (fun () -> !r) in
              ignore (Scoop.Promise.await p : int))
          done;
          Qs_sched.Latch.count_down latch)
      done;
      Qs_sched.Latch.wait latch;
      let snap = Scoop.Stats.snapshot (Scoop.Runtime.stats rt) in
      assert (!r = clients * rounds);
      snap.Scoop.Stats.s_syncs_elided)
  in
  match Qs_conform.check_trace (Scoop.Trace.of_sink sink) with
  | Error e ->
    Format.printf "  UNCHECKABLE: %a@." Qs_conform.pp_error e;
    (0, elided, 1)
  | Ok report ->
    Printf.printf
      "%d traced events across %d registration streams, %d syncs elided, %d \
       violations\n"
      report.Qs_conform.events
      (List.length report.Qs_conform.streams)
      elided
      (List.length report.Qs_conform.violations);
    List.iter
      (fun v -> Format.printf "  VIOLATION: %a@." Qs_conform.pp_violation v)
      report.Qs_conform.violations;
    ( report.Qs_conform.events,
      elided,
      List.length report.Qs_conform.violations )

(* -- Bechamel micro-suite: one Test.make per table ------------------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  print_newline ();
  print_endline "Bechamel micro-benchmarks (ns/run, OLS estimate)";
  print_endline (String.make 72 '-');
  (* table1's primitive: one pulled element through a SCOOP query. *)
  let t_table1 =
    Test.make ~name:"table1:query-pull-100"
      (Staged.stage (fun () ->
         Scoop.Runtime.run ~domains:1 (fun rt ->
           let h = Scoop.Runtime.processor rt in
           let data = Scoop.Shared.create h (Array.init 100 Fun.id) in
           Scoop.Runtime.separate rt h (fun reg ->
             let acc = ref 0 in
             for i = 0 to 99 do
               acc := !acc + Scoop.Shared.get reg data (fun a -> a.(i))
             done;
             !acc))))
  in
  (* table2's primitive: reservation + one asynchronous call. *)
  let t_table2 =
    Test.make ~name:"table2:separate-call-100"
      (Staged.stage (fun () ->
         Scoop.Runtime.run ~domains:1 (fun rt ->
           let h = Scoop.Runtime.processor rt in
           let cell = Scoop.Shared.create h (ref 0) in
           for _ = 1 to 100 do
             Scoop.Runtime.separate rt h (fun reg ->
               Scoop.Shared.apply reg cell incr)
           done)))
  in
  (* table4's primitive: the fiber spawn/join cycle every paradigm uses. *)
  let t_table4 =
    Test.make ~name:"table4:spawn-join-100"
      (Staged.stage (fun () ->
         Qs_sched.Sched.run ~domains:1 (fun () ->
           let latch = Qs_sched.Latch.create 100 in
           for _ = 1 to 100 do
             Qs_sched.Sched.spawn (fun () -> Qs_sched.Latch.count_down latch)
           done;
           Qs_sched.Latch.wait latch)))
  in
  (* table5's primitive: one STM transaction vs one channel rendezvous. *)
  let t_table5 =
    Test.make ~name:"table5:stm-incr-100"
      (Staged.stage (fun () ->
         Qs_sched.Sched.run ~domains:1 (fun () ->
           let v = Qs_stm.Stm.make 0 in
           for _ = 1 to 100 do
             Qs_stm.Stm.update v succ
           done)))
  in
  (* Ablations for the queue design choices DESIGN.md calls out: the
     private-queue backing store (unbounded linked SPSC vs bounded ring)
     and the queue-of-queues structure (specialized MPSC vs generic
     Michael–Scott MPMC). *)
  let t_spsc_linked =
    Test.make ~name:"ablation:spsc-linked-1000"
      (Staged.stage (fun () ->
         let q = Qs_queues.Spsc_queue.create () in
         for i = 1 to 1000 do
           Qs_queues.Spsc_queue.push q i
         done;
         for _ = 1 to 1000 do
           ignore (Qs_queues.Spsc_queue.pop q : int option)
         done))
  in
  let t_spsc_ring =
    Test.make ~name:"ablation:spsc-ring-1000"
      (Staged.stage (fun () ->
         let q = Qs_queues.Spsc_ring.create ~capacity_pow2:10 () in
         for i = 1 to 1000 do
           ignore (Qs_queues.Spsc_ring.try_push q i : bool)
         done;
         for _ = 1 to 1000 do
           ignore (Qs_queues.Spsc_ring.pop q : int option)
         done))
  in
  let t_mpsc =
    Test.make ~name:"ablation:qoq-mpsc-1000"
      (Staged.stage (fun () ->
         let q = Qs_queues.Mpsc_queue.create () in
         for i = 1 to 1000 do
           Qs_queues.Mpsc_queue.push q i
         done;
         for _ = 1 to 1000 do
           ignore (Qs_queues.Mpsc_queue.pop q : int option)
         done))
  in
  (* Same row name as the committed baseline, new structure underneath:
     the scheduler's injection queue is now the sharded MPMC (per-shard
     Vyukov MPSC behind a consumer spinlock) instead of the generic
     Michael–Scott queue, so this row tracks the structure the scheduler
     actually runs on and its delta against the recorded baseline. *)
  let t_mpmc =
    Test.make ~name:"ablation:qoq-mpmc-1000"
      (Staged.stage (fun () ->
         let q = Qs_queues.Sharded_mpmc.create_sharded ~shards:4 () in
         for i = 1 to 1000 do
           Qs_queues.Sharded_mpmc.push q i
         done;
         for _ = 1 to 1000 do
           ignore (Qs_queues.Sharded_mpmc.pop q : int option)
         done))
  in
  (* Mailbox ablation: the same 100-call workload through each handler
     communication structure and drain batch width.  Compare qoq vs
     direct at equal batch, and batch 1 (the paper's
     one-dequeue-per-iteration handler loop) vs the batched default. *)
  let t_mailbox mailbox batch =
    let name =
      Printf.sprintf "mailbox:%s-batch%d-100"
        (match mailbox with `Qoq -> "qoq" | `Direct -> "direct")
        batch
    in
    Test.make ~name
      (Staged.stage (fun () ->
         Scoop.Runtime.run ~domains:1
           ~config:
             Scoop.Config.(qoq |> with_mailbox mailbox |> with_batch batch)
           (fun rt ->
           let h = Scoop.Runtime.processor rt in
           let cell = Scoop.Shared.create h (ref 0) in
           for _ = 1 to 100 do
             Scoop.Runtime.separate rt h (fun reg ->
               Scoop.Shared.apply reg cell incr)
           done;
           Scoop.Runtime.separate rt h (fun reg ->
             ignore (Scoop.Shared.get reg cell (fun r -> !r) : int)))))
  in
  (* §7 future work: what would socket-backed private queues cost?
     Same 1000-message stream through the marshalling socket transport
     vs. the in-memory SPSC queue (compare with ablation:spsc-linked). *)
  let t_socket =
    Test.make ~name:"transport:socket-queue-1000"
      (Staged.stage (fun () ->
         Qs_sched.Sched.run ~domains:1 (fun () ->
           let q = Qs_remote.Socket_queue.create () in
           Fun.protect
             ~finally:(fun () -> Qs_remote.Socket_queue.destroy q)
             (fun () ->
               Qs_sched.Sched.spawn (fun () ->
                 for i = 1 to 1000 do
                   Qs_remote.Socket_queue.enqueue q i
                 done;
                 Qs_remote.Socket_queue.close_writer q);
               let rec drain () =
                 match Qs_remote.Socket_queue.dequeue q with
                 | Some _ -> drain ()
                 | None -> ()
               in
               drain ()))))
  in
  let test =
    Test.make_grouped ~name:"qs" ~fmt:"%s:%s"
      [
        t_table1; t_table2; t_table4; t_table5; t_spsc_linked; t_spsc_ring;
        t_mpsc; t_mpmc;
        t_mailbox `Qoq 1; t_mailbox `Qoq 16; t_mailbox `Direct 1;
        t_mailbox `Direct 16; t_socket;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-32s %12.0f ns/run\n" name est
      | _ -> Printf.printf "%-32s (no estimate)\n" name)
    results;
  (* Mean/stddev of the per-run time over the raw samples — the spread
     the OLS point estimate hides, for the machine-readable output. *)
  let label = Measure.label Instance.monotonic_clock in
  let rows =
    Hashtbl.fold
      (fun name (b : Benchmark.t) acc ->
        let samples =
          Array.to_list b.Benchmark.lr
          |> List.filter_map (fun m ->
               let runs = Measurement_raw.run m in
               if runs <= 0.0 then None
               else Some (Measurement_raw.get ~label m /. runs))
        in
        match samples with
        | [] -> acc
        | _ ->
          let n = List.length samples in
          let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int n in
          let var =
            List.fold_left
              (fun acc x -> acc +. ((x -. mean) *. (x -. mean)))
              0.0 samples
            /. float_of_int n
          in
          (name, mean, sqrt var, n) :: acc)
      raw []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)
  in
  (rows, mailbox_batching ())

(* -- machine-readable output ------------------------------------------------- *)

(* One instrumented run of the query-heavy workload under the full
   configuration: runtime counters, scheduler counters and (optionally)
   a whole-stack event trace for the [--trace-out] export. *)
let instrumented_probe ?obs (s : H.scale) =
  let sched = ref [] in
  let stats =
    Scoop.Runtime.run ~domains:s.H.domains ?obs
      ~on_counters:(fun c -> sched := Qs_sched.Sched.counters_assoc c)
      (fun rt ->
        query_workload rt ~rounds:(max 200 (s.H.m / 4)) ~clients:8;
        (* Exercise the failure paths too, so the failure counters in
           the machine-readable output are nonzero (asserted by CI): a
           rejected pipelined query and a poisoned registration. *)
        let h = Scoop.Runtime.processor rt in
        (try
           Scoop.Runtime.separate rt h (fun reg ->
             let p =
               Scoop.Registration.query_async reg (fun () ->
                 failwith "bench fault")
             in
             (match Scoop.Promise.await p with
             | _ -> ()
             | exception Failure _ -> ());
             Scoop.Registration.call reg (fun () -> failwith "bench fault");
             Scoop.Registration.sync reg)
         with Scoop.Handler_failure _ -> ());
        Scoop.Runtime.stats rt)
  in
  (Scoop.Stats.assoc stats, Scoop.Stats.hist_assoc stats, !sched)

let json_ints kvs =
  Qs_obs.Json.Obj (List.map (fun (k, v) -> (k, Qs_obs.Json.Int v)) kvs)

let write_json path (s : H.scale) micro_rows batching_rows pipeline_rows
    timeout_info pools_info alloc_info conformance_info =
  let open Qs_obs.Json in
  let runtime_counters, runtime_hists, sched_counters = instrumented_probe s in
  let pools_json =
    match pools_info with
    | None -> []
    | Some (_, pool_counters) -> [ ("pools", json_ints pool_counters) ]
  in
  let alloc_json =
    match alloc_info with
    | None -> []
    | Some ((p_minor, p_major, p_ns), (u_minor, u_major, u_ns), requests) ->
      [
        ( "allocation",
          Obj
            [
              ("preset", String "qoq");
              ("requests", Int requests);
              ("minor_words_per_request", Float p_minor);
              ("major_words_per_request", Float p_major);
              ("ns_per_request", Float p_ns);
              ("minor_words_per_request_unpooled", Float u_minor);
              ("major_words_per_request_unpooled", Float u_major);
              ("ns_per_request_unpooled", Float u_ns);
            ] );
      ]
  in
  let conformance_json =
    match conformance_info with
    | None -> []
    | Some (events, elided, violations) ->
      [
        ( "conformance",
          Obj
            [
              ("events", Int events);
              ("syncs_elided", Int elided);
              ("violations", Int violations);
              ("ok", Bool (violations = 0));
            ] );
      ]
  in
  let timeout_json =
    match timeout_info with
    | None -> []
    | Some (plain_ns, timed_ns, probe, alloc) ->
      [
        ( "timeout",
          Obj
            [
              ("query_ns_no_deadline", Float plain_ns);
              ("query_ns_generous_deadline", Float timed_ns);
              ("overhead_ns", Float (timed_ns -. plain_ns));
              ("probe", json_ints probe);
              ("transport_minor_words_per_msg", Float alloc);
            ] );
      ]
  in
  let pipeline_json =
    List.map
      (fun (workload, mode, secs, snap) ->
        Obj
          [
            ("workload", String workload);
            ("mode", String mode);
            ("seconds", Float secs);
            ("promises_created", Int snap.Scoop.Stats.s_promises_created);
            ( "promises_ready_on_first_poll",
              Int snap.Scoop.Stats.s_promises_ready );
            ( "promises_forced_blocking",
              Int snap.Scoop.Stats.s_promises_blocked );
            ("overlap_ratio", Float (Scoop.Stats.overlap_ratio snap));
            ("requests_flat", Int snap.Scoop.Stats.s_requests_flat);
            ("syncs_elided", Int snap.Scoop.Stats.s_syncs_elided);
          ])
      pipeline_rows
  in
  let micro_json =
    List.map
      (fun (name, mean, stddev, samples) ->
        Obj
          [
            ("name", String name);
            ("mean_ns", Float mean);
            ("stddev_ns", Float stddev);
            ("samples", Int samples);
          ])
      micro_rows
  in
  let batching_json =
    List.map
      (fun (mailbox, batch, snap) ->
        Obj
          [
            ("mailbox", String mailbox);
            ("batch", Int batch);
            ("handler_wakeups", Int snap.Scoop.Stats.s_handler_wakeups);
            ("batched_requests", Int snap.Scoop.Stats.s_batched_requests);
            ("mean_batch", Float (Scoop.Stats.mean_batch snap));
          ])
      batching_rows
  in
  let doc =
    Obj
      ([
        ("suite", String "qs-bench");
        ( "config",
          Obj
            [
              ("scale_m", Int s.H.m);
              ("reps", Int s.H.reps);
              ("domains", Int s.H.domains);
              ("workers", Int s.H.workers);
            ] );
        ("micro", List micro_json);
        ("mailbox_batching", List batching_json);
        ("pipeline", List pipeline_json);
      ]
      @ timeout_json
      @ pools_json
      @ alloc_json
      @ conformance_json
      @ [
        ( "counters",
          Obj
            [
              ("runtime", json_ints runtime_counters);
              ("sched", json_ints sched_counters);
            ] );
        ( "histograms",
          Obj
            (List.map
               (fun (n, d) -> (n, Qs_obs.Histogram.summary_json d))
               runtime_hists) );
      ])
  in
  write_file path doc;
  Printf.printf "\nwrote machine-readable results to %s\n" path

let write_trace path (s : H.scale) =
  let sink = Qs_obs.Sink.create () in
  let runtime_counters, runtime_hists, sched_counters =
    instrumented_probe ~obs:sink s
  in
  Qs_obs.Chrome.write_file
    ~counters:(runtime_counters @ sched_counters)
    ~histograms:runtime_hists sink path;
  Printf.printf
    "\nwrote Chrome trace of the instrumented probe to %s (load in \
     chrome://tracing or ui.perfetto.dev)\n"
    path

(* -- driver ----------------------------------------------------------------- *)

(* Open-loop SLO curve (BENCH_load.json): sweep arrival rates through the
   saturation knee under a deadline + shed-oldest admission policy and
   record coordinated-omission-safe latency per rate.  Rates and the
   per-request service time are sized for a small box: the low end sits
   well inside the SLO, the high end visibly degrades. *)
let load_probe (s : H.scale) =
  let deadline = 0.05 in
  let spec =
    {
      Qs_load.Load_gen.default with
      clients = 4;
      handlers = 2;
      duration = (if s.H.reps <= 1 then 0.5 else 1.0);
      service_us = 500.;
    }
  in
  let config =
    Scoop.Config.qoq
    |> Scoop.Config.with_deadline deadline
    |> Scoop.Config.with_bound 512
    |> Scoop.Config.with_overflow `Shed_oldest
  in
  let rates = [ 500.; 1000.; 1500.; 2000.; 3000. ] in
  Printf.printf "\nopen-loop SLO sweep (service %.0f us, deadline %.0f ms)\n"
    spec.Qs_load.Load_gen.service_us (deadline *. 1e3);
  let points =
    List.map
      (fun r ->
        let p =
          Qs_load.Load_gen.run_point ~domains:1 ~config
            { spec with Qs_load.Load_gen.rate = r }
        in
        Format.printf "  %a@." (Qs_load.Load_gen.pp_point ~deadline) p;
        p)
      rates
  in
  (match Qs_load.Load_gen.knee ~deadline points with
  | Some ok, Some bad ->
    Printf.printf "  knee: %.1f/s in SLO, degrades by %.1f/s\n" ok bad
  | _ -> ());
  let path = "BENCH_load.json" in
  Qs_obs.Json.write_file path
    (Qs_load.Load_gen.report_json ~deadline ~domains:1 spec points);
  Printf.printf "  wrote %s\n" path

let run scale only json trace_out =
  let want name = only = [] || List.mem name only in
  let par_opt = lazy (H.optimization_parallel scale) in
  let conc_opt = lazy (H.optimization_concurrent scale) in
  if want "table1" then Report.table1 (Lazy.force par_opt);
  if want "fig16" then Report.fig16 (Lazy.force par_opt);
  if want "table2" || want "fig17" then Report.table2 (Lazy.force conc_opt);
  if want "table3" then Report.table3 ();
  if want "table4" || want "fig18" then begin
    Report.table4 (H.language_parallel scale);
    table4_simulated ()
  end;
  if want "fig19" then fig19 ();
  if want "table5" || want "fig20" then Report.table5 (H.language_concurrent scale);
  if want "summary" then begin
    Report.geomeans_44
      (H.optimization_geomeans ~parallel:(Lazy.force par_opt)
         ~concurrent:(Lazy.force conc_opt));
    let par_langs = H.language_parallel scale in
    let conc_langs = H.language_concurrent scale in
    Report.geomeans_langs
      ~title:"§5.2.1 — parallel total-time geometric means (seconds)"
      ~paper:PD.parallel_total_geomeans
      (H.language_geomeans par_langs);
    Report.geomeans_langs
      ~title:"§5.3 — concurrent geometric means (seconds)"
      ~paper:PD.concurrent_geomeans
      (H.language_geomeans conc_langs);
    Report.geomeans_langs
      ~title:"§5.4 — overall geometric means (seconds)"
      ~paper:PD.overall_geomeans
      (H.language_geomeans (par_langs @ conc_langs))
  end;
  if want "eve" then Report.eve (H.eve_experiment scale);
  if want "switches" then switches scale;
  let pipeline_rows = if want "pipeline" then pipeline scale else [] in
  let timeout_info =
    if want "timeout" then Some (timeout_ablation scale) else None
  in
  let pools_info = if want "pools" then Some (pools_ablation scale) else None in
  let pools_rows =
    match pools_info with Some (rows, _) -> rows | None -> []
  in
  let remote_rows = if want "remote" then remote_ablation scale else [] in
  let alloc_info =
    if want "alloc" then Some (allocation_probe scale) else None
  in
  let conformance_info =
    if want "conformance" then Some (conformance_probe scale) else None
  in
  if want "load" then load_probe scale;
  if want "micro" then begin
    let micro_rows, batching_rows = micro () in
    match json with
    | Some path ->
      write_json path scale
        (micro_rows @ pools_rows @ remote_rows)
        batching_rows pipeline_rows timeout_info pools_info alloc_info
        conformance_info
    | None -> ()
  end
  else
    Option.iter
      (fun path ->
        (* No micro rows without the micro suite; still emit the pools
           rows and the counters so the output is valid and
           self-describing. *)
        write_json path scale (pools_rows @ remote_rows) [] pipeline_rows
          timeout_info pools_info alloc_info conformance_info)
      json;
  Option.iter (fun path -> write_trace path scale) trace_out

open Cmdliner

let scale_term =
  let base =
    Arg.(
      value
      & opt (enum [ ("default", H.default); ("tiny", H.tiny) ]) H.default
      & info [ "scale" ] ~doc:"Problem scale preset (default or tiny).")
  in
  let nr = Arg.(value & opt (some int) None & info [ "nr" ] ~doc:"Matrix size.") in
  let m = Arg.(value & opt (some int) None & info [ "m" ] ~doc:"Concurrent iterations.") in
  let nt = Arg.(value & opt (some int) None & info [ "nt" ] ~doc:"Threadring passes.") in
  let nc = Arg.(value & opt (some int) None & info [ "nc" ] ~doc:"Chameneos meetings.") in
  let reps = Arg.(value & opt (some int) None & info [ "reps" ] ~doc:"Repetitions (median).") in
  let domains = Arg.(value & opt (some int) None & info [ "domains" ] ~doc:"Scheduler domains.") in
  let workers = Arg.(value & opt (some int) None & info [ "workers" ] ~doc:"Data-parallel workers.") in
  let build base nr m nt nc reps domains workers =
    let s = base in
    let s = match nr with Some v -> { s with H.nr = v; nw = v } | None -> s in
    let s = match m with Some v -> { s with H.m = v } | None -> s in
    let s = match nt with Some v -> { s with H.nt = v } | None -> s in
    let s = match nc with Some v -> { s with H.nc = v } | None -> s in
    let s = match reps with Some v -> { s with H.reps = v } | None -> s in
    let s = match domains with Some v -> { s with H.domains = v } | None -> s in
    let s = match workers with Some v -> { s with H.workers = v } | None -> s in
    s
  in
  Term.(const build $ base $ nr $ m $ nt $ nc $ reps $ domains $ workers)

let only_term =
  Arg.(
    value & opt_all (enum (List.map (fun a -> (a, a)) all_artifacts)) []
    & info [ "only" ]
        ~doc:"Regenerate only the given artifact (repeatable). One of: table1 \
              fig16 table2 fig17 table3 table4 fig18 fig19 table5 fig20 \
              summary eve switches micro pipeline timeout pools alloc \
              conformance remote load.")

let json_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write machine-readable results to $(docv): micro-benchmark \
           mean/stddev over raw samples, mailbox batching rows, and the \
           runtime/scheduler counters of an instrumented probe run.")

let trace_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Run an instrumented probe workload and write its whole-stack \
           event trace as Chrome trace-event JSON to $(docv).")

let cmd =
  let doc = "Regenerate every table and figure of the SCOOP/Qs evaluation" in
  Cmd.v
    (Cmd.info "qs-bench" ~doc)
    Term.(const run $ scale_term $ only_term $ json_term $ trace_out_term)

let () = exit (Cmd.eval cmd)
