(* Quickstart: the SCOOP model in ten lines.

   A processor (handler) owns a counter object.  Clients reserve the
   handler with a separate block; inside it, [apply] logs asynchronous
   calls and [get] issues a synchronous query.  The runtime guarantees
   (paper §2.2) that the handler executes this client's calls in order,
   with no other client's calls interleaved — so the query's result is
   exactly what sequential reasoning predicts.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  Scoop.Runtime.run (fun rt ->
    (* A handler and an object it owns. *)
    let handler = Scoop.Runtime.processor rt in
    let counter = Scoop.Shared.create handler (ref 0) in
    (* separate handler do ... end *)
    let observed =
      Scoop.Runtime.separate rt handler (fun reg ->
        for _ = 1 to 10 do
          (* Asynchronous: returns immediately, executed by the handler. *)
          Scoop.Shared.apply reg counter (fun c -> incr c)
        done;
        (* Synchronous query: waits until the ten calls above are done. *)
        Scoop.Shared.get reg counter (fun c -> !c))
    in
    Printf.printf "counter after 10 asynchronous increments: %d\n" observed;
    assert (observed = 10))
