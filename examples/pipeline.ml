(* A data-parallel pipeline in the paper's idiom (§3.4): matrix data lives
   on worker processors; the master pulls results with promise-pipelined
   queries.

   This is a miniature of the Cowichan `chain` benchmark: generate a
   random matrix in parallel, histogram it, and report the threshold that
   keeps the top 1% — all data movement goes through the SCOOP runtime,
   race-free by construction.  The pull stage issues one [query_async]
   per worker and only then forces the promises, so the k histogram
   round trips overlap instead of serializing: the master waits for the
   slowest worker once, not for each worker in turn.  The runtime
   statistics printed at the end count the pipelined queries and how
   many were already resolved when forced.

   Run with:  dune exec examples/pipeline.exe *)

module C = Qs_workloads.Cowichan

let () =
  let nr = 120 and seed = 9 and p = 1 and workers = 4 in
  Scoop.run ~domains:2 ~config:Scoop.Config.all (fun rt ->
    let stats = Scoop.Runtime.stats rt in
    let before = Scoop.Stats.snapshot stats in
    (* Each worker owns a chunk of rows. *)
    let chunks =
      List.map
        (fun (lo, hi) ->
          let proc = Scoop.Runtime.processor rt in
          let arr = Array.make ((hi - lo) * nr) 0 in
          (proc, lo, hi, arr, Scoop.Shared.create proc arr))
        (Qs_benchmarks.Bench_types.split nr workers)
    in
    (* Stage 1: generate rows in parallel (asynchronous calls). *)
    List.iter
      (fun (proc, lo, hi, arr, _) ->
        Scoop.Runtime.separate rt proc (fun reg ->
          Scoop.Registration.call reg (fun () ->
            C.randmat_chunk ~seed ~nr ~lo ~hi arr)))
      chunks;
    (* Stage 2: fan the histogram queries out as promises — each worker
       histograms its own chunk behind the still-pending randmat call —
       then force them all.  [Promise.all] costs the slowest worker. *)
    let promises =
      List.map
        (fun (proc, lo, hi, arr, _) ->
          Scoop.Runtime.separate rt proc (fun reg ->
            Scoop.Registration.query_async reg (fun () ->
              C.thresh_hist ~nr arr ~lo:0 ~hi:(hi - lo))))
        chunks
    in
    let hist = Array.make C.modulus 0 in
    List.iter
      (Array.iteri (fun v n -> hist.(v) <- hist.(v) + n))
      (Scoop.Promise.await (Scoop.Promise.all promises));
    let threshold = C.thresh_threshold ~hist ~total:(nr * nr) ~p in
    Printf.printf "top %d%% threshold of the %dx%d matrix: %d\n" p nr nr
      threshold;
    (* Validate against the sequential reference. *)
    let reference, _ = C.thresh ~nr (C.randmat ~seed ~nr) ~p in
    assert (threshold = reference);
    let after = Scoop.Stats.snapshot stats in
    let d = Scoop.Stats.diff after before in
    Format.printf "runtime activity for the pipeline:@.%a@."
      Scoop.Stats.pp_snapshot d;
    Format.printf "pipelined overlap ratio: %.2f@."
      (Scoop.Stats.overlap_ratio d))
