(* A data-parallel pipeline in the paper's idiom (§3.4): matrix data lives
   on worker processors; the master pulls results with queries.

   This is a miniature of the Cowichan `chain` benchmark: generate a
   random matrix in parallel, histogram it, and report the threshold that
   keeps the top 1% — all data movement goes through the SCOOP runtime,
   race-free by construction.  The runtime statistics printed at the end
   show the dynamic sync-coalescing (§3.4.1) at work: thousands of
   element reads, but almost no sync round trips.

   Run with:  dune exec examples/pipeline.exe *)

module C = Qs_workloads.Cowichan

let () =
  let nr = 120 and seed = 9 and p = 1 and workers = 4 in
  Scoop.Runtime.run ~domains:2 ~config:Scoop.Config.all (fun rt ->
    let stats = Scoop.Runtime.stats rt in
    let before = Scoop.Stats.snapshot stats in
    (* Each worker owns a chunk of rows. *)
    let chunks =
      List.map
        (fun (lo, hi) ->
          let proc = Scoop.Runtime.processor rt in
          let arr = Array.make ((hi - lo) * nr) 0 in
          (proc, lo, hi, arr, Scoop.Shared.create proc arr))
        (Qs_benchmarks.Bench_types.split nr workers)
    in
    (* Stage 1: generate rows in parallel (asynchronous calls). *)
    List.iter
      (fun (proc, lo, hi, arr, _) ->
        Scoop.Runtime.separate rt proc (fun reg ->
          Scoop.Registration.call reg (fun () ->
            C.randmat_chunk ~seed ~nr ~lo ~hi arr)))
      chunks;
    (* Stage 2: pull each chunk's histogram out with queries. *)
    let hist = Array.make C.modulus 0 in
    List.iter
      (fun (proc, lo, hi, _, shared) ->
        Scoop.Runtime.separate rt proc (fun reg ->
          let h =
            Scoop.Registration.query reg (fun () -> ())
            |> fun () ->
            (* The handler is synced: read the chunk directly and
               histogram it on the master. *)
            let data = Scoop.Shared.read_synced reg shared in
            C.thresh_hist ~nr data ~lo:0 ~hi:(hi - lo)
          in
          Array.iteri (fun v n -> hist.(v) <- hist.(v) + n) h))
      chunks;
    let threshold = C.thresh_threshold ~hist ~total:(nr * nr) ~p in
    Printf.printf "top %d%% threshold of the %dx%d matrix: %d\n" p nr nr
      threshold;
    (* Validate against the sequential reference. *)
    let reference, _ = C.thresh ~nr (C.randmat ~seed ~nr) ~p in
    assert (threshold = reference);
    let after = Scoop.Stats.snapshot stats in
    Format.printf "runtime activity for the pipeline:@.%a@."
      Scoop.Stats.pp_snapshot
      (Scoop.Stats.diff after before))
