(* Bank accounts with atomic transfers — the classic SCOOP motivating
   example for multiple reservations (paper §2.4, Fig. 5).

   Each account lives on its own processor.  A transfer reserves *both*
   accounts in one separate block, so the withdrawal and the deposit are
   observed together: no other client can see money in flight, and the
   global balance is invariant.  Reserving the accounts one at a time
   (nested blocks) would not provide that guarantee — and with queries
   inside, could even deadlock (paper §2.5, Fig. 6).

   Run with:  dune exec examples/bank_account.exe *)

type account = {
  name : string;
  balance : int ref;
}

let () =
  Scoop.Runtime.run ~domains:2 (fun rt ->
    let accounts =
      List.map
        (fun name ->
          let proc = Scoop.Runtime.processor rt in
          (proc, Scoop.Shared.create proc { name; balance = ref 1000 }))
        [ "alice"; "bob"; "carol" ]
    in
    let transfer (p1, a1) (p2, a2) amount =
      Scoop.Runtime.separate2 rt p1 p2 (fun r1 r2 ->
        let available = Scoop.Shared.get r1 a1 (fun a -> !(a.balance)) in
        if available >= amount then begin
          Scoop.Shared.apply r1 a1 (fun a -> a.balance := !(a.balance) - amount);
          Scoop.Shared.apply r2 a2 (fun a -> a.balance := !(a.balance) + amount)
        end)
    in
    let total () =
      List.fold_left
        (fun acc (p, a) ->
          acc + Scoop.Runtime.separate rt p (fun reg ->
                  Scoop.Shared.get reg a (fun a -> !(a.balance))))
        0 accounts
    in
    (* Hammer random transfers from several client fibers. *)
    let clients = 6 and rounds = 400 in
    let latch = Qs_sched.Latch.create clients in
    for c = 0 to clients - 1 do
      Qs_sched.Sched.spawn (fun () ->
        let state = ref (c + 1) in
        let rand n =
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          !state mod n
        in
        for _ = 1 to rounds do
          let i = rand 3 in
          let j = (i + 1 + rand 2) mod 3 in
          transfer (List.nth accounts i) (List.nth accounts j) (rand 50)
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    let final = total () in
    Printf.printf "total balance after %d concurrent transfers: %d\n"
      (clients * rounds) final;
    assert (final = 3000);
    print_endline "invariant holds: money is conserved")
