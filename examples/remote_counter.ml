(* Distributed quickstart: the same separate-block program against a
   processor living in another scheduler, behind a unix socket.

   The only change from the in-process quickstart is the configuration —
   [Scoop.Remote.connect] instead of the default endpoint — plus the
   distributed runtime's state discipline: handler state lives in
   module-level globals, because shipped closures execute against the
   *node's* globals (Marshal.Closures ships code, not captured state).
   Here the node is self-hosted on a second domain; point [addr] at a
   `qs node` process on another machine and nothing else changes.

   Run with:  dune exec examples/remote_counter.exe *)

let counter = Atomic.make 0

let () =
  let path =
    Printf.sprintf "%s/qs_example_%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  let addr = Scoop.Config.Unix_sock path in
  (* The hosting half: one `qs node` worth of runtime on its own domain. *)
  let node = Domain.spawn (fun () -> Scoop.Remote.listen addr) in
  Scoop.Runtime.run
    ~config:(Scoop.Remote.connect [ addr ])
    (fun rt ->
      let handler = Scoop.Runtime.processor rt in
      let observed =
        Scoop.Runtime.separate rt handler (fun reg ->
          (* Ten asynchronous calls cross the socket without waiting... *)
          for _ = 1 to 10 do
            Scoop.Registration.call reg (fun () -> Atomic.incr counter)
          done;
          (* ...and the query's round trip observes all of them: the node
             serves this registration's stream in order. *)
          Scoop.Registration.query reg (fun () -> Atomic.get counter))
      in
      assert (observed = 10);
      let st = Scoop.Runtime.stats rt in
      let s = Scoop.Stats.snapshot st in
      assert (s.Scoop.Stats.s_remote_requests > 0);
      let rtt =
        Qs_obs.Histogram.dist (Scoop.Stats.histograms st) "query_remote_ns"
      in
      Printf.printf
        "remote counter reached %d over %d wire requests (rtt p50 %.2f ms, \
         p99 %.2f ms)\n"
        observed s.Scoop.Stats.s_remote_requests
        (float_of_int (Qs_obs.Histogram.quantile rtt 0.5) /. 1e6)
        (float_of_int (Qs_obs.Histogram.quantile rtt 0.99) /. 1e6);
      (* Self-hosted on a domain, node and client share this process's
         globals; against a separate `qs node` process the increments
         would land on the node's copy and ours would stay 0. *)
      Scoop.Runtime.shutdown_nodes rt);
  Domain.join node
