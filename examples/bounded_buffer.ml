(* A bounded buffer with SCOOP wait conditions.

   In SCOOP, a routine's precondition on a separate object is a *wait
   condition*: instead of failing, the call waits until the supplier's
   state satisfies it.  [Scoop.Runtime.separate_when] provides exactly
   that — the condition and the body run under one registration, so no
   other client can sneak in between the check and the action.

   Producers wait for space, consumers wait for items; no explicit locks,
   condition variables, or retry loops appear in user code.

   Run with:  dune exec examples/bounded_buffer.exe *)

let () =
  let capacity = 8 and producers = 3 and items = 300 in
  Scoop.Runtime.run ~domains:2 (fun rt ->
    let owner = Scoop.Runtime.processor rt in
    let buffer = Scoop.Shared.create owner (Queue.create ()) in
    let latch = Qs_sched.Latch.create (2 * producers) in
    let consumed = Atomic.make 0 in
    for p = 0 to producers - 1 do
      Qs_sched.Sched.spawn (fun () ->
        for i = 1 to items do
          (* require buffer.count < capacity *)
          Scoop.Runtime.separate_when rt owner
            ~pred:(fun reg ->
              Scoop.Shared.get reg buffer (fun q -> Queue.length q < capacity))
            (fun reg ->
              Scoop.Shared.apply reg buffer (fun q ->
                Queue.push ((p * items) + i) q))
        done;
        Qs_sched.Latch.count_down latch);
      Qs_sched.Sched.spawn (fun () ->
        for _ = 1 to items do
          (* require not buffer.is_empty *)
          let _item =
            Scoop.Runtime.separate_when rt owner
              ~pred:(fun reg ->
                Scoop.Shared.get reg buffer (fun q -> not (Queue.is_empty q)))
              (fun reg -> Scoop.Shared.get reg buffer Queue.pop)
          in
          Atomic.incr consumed
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    let leftover =
      Scoop.Runtime.separate rt owner (fun reg ->
        Scoop.Shared.get reg buffer Queue.length)
    in
    Printf.printf "consumed %d items, %d left in the buffer\n"
      (Atomic.get consumed) leftover;
    assert (Atomic.get consumed = producers * items && leftover = 0);
    let s = Scoop.Stats.snapshot (Scoop.Runtime.stats rt) in
    Printf.printf
      "the buffer never overflowed; wait conditions retried %d times\n"
      s.Scoop.Stats.s_wait_retries)
