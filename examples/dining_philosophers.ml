(* Dining philosophers without deadlock.

   Each fork is an object on its own processor.  A philosopher picks up
   *both* forks with one atomic multi-reservation (paper §2.4, §3.3) —
   the runtime inserts the philosopher's private queues into both forks'
   queues-of-queues atomically, so the circular-wait pattern that
   deadlocks the naive two-lock solution cannot form, no matter how the
   philosophers are scheduled.  (With the original lock-based SCOOP
   semantics and nested single reservations this exact program can
   deadlock — the semantics explorer proves both facts: `qs explore fig6
   --semantics original`.)

   Run with:  dune exec examples/dining_philosophers.exe *)

let () =
  let philosophers = 5 and meals = 200 in
  Scoop.Runtime.run ~domains:2 (fun rt ->
    let forks =
      Array.init philosophers (fun i ->
        let proc = Scoop.Runtime.processor rt in
        (proc, Scoop.Shared.create proc (ref 0), i))
    in
    let latch = Qs_sched.Latch.create philosophers in
    for p = 0 to philosophers - 1 do
      Qs_sched.Sched.spawn (fun () ->
        let left_proc, left_uses, _ = forks.(p) in
        let right_proc, right_uses, _ = forks.((p + 1) mod philosophers) in
        for _ = 1 to meals do
          (* Atomic reservation of both forks: no lock ordering needed,
             no deadlock possible. *)
          Scoop.Runtime.separate2 rt left_proc right_proc (fun rl rr ->
            Scoop.Shared.apply rl left_uses incr;
            Scoop.Shared.apply rr right_uses incr)
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    let total =
      Array.fold_left
        (fun acc (proc, uses, _) ->
          acc + Scoop.Runtime.separate rt proc (fun reg ->
                  Scoop.Shared.get reg uses (fun u -> !u)))
        0 forks
    in
    Printf.printf "every philosopher ate %d meals; total fork uses: %d\n"
      meals total;
    assert (total = 2 * philosophers * meals);
    print_endline "no deadlock, no lost updates")
