(* Command-line companion tool:

     qs explore <fig1|fig5|fig5-nested|fig6|fig6-queries|fig6-queries-outer>
         — exhaustively explore a paper example under a chosen semantics,
           reporting interleavings, deadlocks and guarantee checks.
     qs syncopt [kernel]
         — run the static sync-coalescing pass on the named kernel CFG
           (default: all) and print the removals.
     qs sim [--task t] [--lang l]
         — print simulated scalability curves from the calibrated model.
     qs demo
         — a small end-to-end SCOOP program with runtime statistics. *)

open Cmdliner

(* -- explore ---------------------------------------------------------------- *)

let programs =
  [
    ("fig1", Qs_semantics.Examples.fig1);
    ("fig5", Qs_semantics.Examples.fig5);
    ("fig5-nested", Qs_semantics.Examples.fig5_nested);
    ("fig6", Qs_semantics.Examples.fig6);
    ("fig6-queries", Qs_semantics.Examples.fig6_queries);
    ("fig6-queries-outer", Qs_semantics.Examples.fig6_queries_outer);
  ]

let modes =
  [
    ("qs", Qs_semantics.Step.qs);
    ("qs-client-exec", Qs_semantics.Step.qs_client_exec);
    ("original", Qs_semantics.Step.original);
  ]

let explore name mode_name =
  let program = List.assoc name programs in
  let mode = List.assoc mode_name modes in
  let module E = Qs_semantics.Explore in
  let stats = E.reachable mode program in
  Printf.printf "program %s under %s semantics:\n" name mode_name;
  Printf.printf "  reachable states: %d%s\n" stats.E.states
    (if stats.E.truncated then " (truncated)" else "");
  Printf.printf "  terminal states:  %d\n" (List.length stats.E.terminals);
  Printf.printf "  deadlock states:  %d\n" (List.length stats.E.deadlocks);
  (match stats.E.deadlocks with
  | d :: _ ->
    Format.printf "  a deadlocked configuration:@.%a@." Qs_semantics.State.pp d
  | [] -> ());
  let traces, truncated =
    E.observable_traces mode program
      ~filter:(E.on_handler Qs_semantics.Examples.x)
  in
  Printf.printf "  distinct action orders on handler x: %d%s\n"
    (List.length traces)
    (if truncated then " (truncated)" else "");
  List.iter (fun tr -> Printf.printf "    [%s]\n" (String.concat "; " tr)) traces;
  let violation, runs, _ = Qs_semantics.Guarantees.check_program mode program in
  (match violation with
  | None -> Printf.printf "  guarantee 2 holds over %d complete runs\n" runs
  | Some (_, v) ->
    Format.printf "  GUARANTEE VIOLATION: %a@." Qs_semantics.Guarantees.pp_violation v)

(* -- syncopt ---------------------------------------------------------------- *)

let syncopt name =
  let kernels =
    match name with
    | None -> Qs_syncopt.Kernels.all
    | Some n -> (
      match List.assoc_opt n Qs_syncopt.Kernels.all with
      | Some k -> [ (n, k) ]
      | None ->
        Printf.eprintf "qs: unknown kernel %S; available: %s\n" n
          (String.concat ", " (List.map fst Qs_syncopt.Kernels.all));
        exit 1)
  in
  List.iter
    (fun (n, k) ->
      let cfg = k () in
      Printf.printf "== %s ==\n" n;
      Format.printf "%a" Qs_syncopt.Cfg.pp cfg;
      let report = Qs_syncopt.Pass.run cfg in
      Format.printf "%a@." Qs_syncopt.Pass.pp_report report)
    kernels

(* -- sim --------------------------------------------------------------------- *)

let sim task lang =
  let tasks =
    match task with
    | Some t -> [ t ]
    | None -> Qs_benchmarks.Paper_data.parallel_tasks
  in
  let langs =
    match lang with
    | Some l -> [ l ]
    | None -> Qs_benchmarks.Paper_data.languages
  in
  let cores = [ 1; 2; 4; 8; 16; 32 ] in
  List.iter
    (fun t ->
      List.iter
        (fun l ->
          match Qs_sim.Model.speedups ~task:t ~lang:l ~cores () with
          | None -> ()
          | Some curve ->
            Printf.printf "%-8s %-8s" t l;
            List.iter (fun (c, s) -> Printf.printf "  %2d:%5.1fx" c s) curve;
            print_newline ())
        langs)
    tasks

(* -- demo --------------------------------------------------------------------- *)

let demo trace_flag mailbox batch spsc =
  if batch < 1 then begin
    Printf.eprintf "qs: --batch must be >= 1 (got %d)\n" batch;
    exit 1
  end;
  let stats =
    Scoop.Runtime.run ~domains:1 ~mailbox ~batch ~spsc ~trace:trace_flag
      (fun rt ->
      let account = Scoop.Runtime.processor rt in
      let balance = Scoop.Shared.create account (ref 100) in
      let tellers = 4 and deposits = 1000 in
      let latch = Qs_sched.Latch.create tellers in
      for _ = 1 to tellers do
        Qs_sched.Sched.spawn (fun () ->
          for _ = 1 to deposits do
            Scoop.Runtime.separate rt account (fun reg ->
              Scoop.Shared.apply reg balance (fun b -> b := !b + 1))
          done;
          Qs_sched.Latch.count_down latch)
      done;
      Qs_sched.Latch.wait latch;
      let final =
        Scoop.Runtime.separate rt account (fun reg ->
          Scoop.Shared.get reg balance (fun b -> !b))
      in
      Printf.printf "final balance: %d (expected %d)\n" final
        (100 + (tellers * deposits));
      (match Scoop.Runtime.trace rt with
      | Some tr ->
        Format.printf "detailed trace (§7 instrumentation):@.%a@."
          Scoop.Trace.pp_summary (Scoop.Trace.summarize tr)
      | None -> ());
      Scoop.Stats.snapshot (Scoop.Runtime.stats rt))
  in
  Format.printf "runtime statistics:@.%a@." Scoop.Stats.pp_snapshot stats

(* -- lang --------------------------------------------------------------------- *)

let lang_checked optimize explore_flag domains program =
  if optimize then
    List.iter
      (fun r -> Format.printf "%a@." Qs_lang.Lang.Codegen.pp_report r)
      (Qs_lang.Lang.Codegen.optimize program)
  else if explore_flag then begin
    let stats = Qs_lang.Lang.To_semantics.explore program in
    Printf.printf "reachable states: %d%s\n" stats.Qs_semantics.Explore.states
      (if stats.Qs_semantics.Explore.truncated then " (truncated)" else "");
    Printf.printf "deadlock states:  %d\n"
      (List.length stats.Qs_semantics.Explore.deadlocks);
    match stats.Qs_semantics.Explore.deadlocks with
    | d :: _ -> Format.printf "%a@." Qs_semantics.State.pp d
    | [] -> ()
  end
  else begin
    let out = Qs_lang.Lang.Compile.run ~domains program in
    List.iter
      (fun (h, vars) ->
        Printf.printf "%s: %s\n" h
          (String.concat ", "
             (List.map (fun (v, n) -> Printf.sprintf "%s = %d" v n) vars)))
      out.Qs_lang.Compile.finals;
    match out.Qs_lang.Compile.printed with
    | [] -> ()
    | printed ->
      Printf.printf "printed: %s\n"
        (String.concat ", " (List.map string_of_int printed))
  end


let lang file optimize explore_flag domains =
  if optimize && explore_flag then begin
    Printf.eprintf "qs: --optimize and --explore are mutually exclusive\n";
    exit 1
  end;
  let source =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error message ->
      Printf.eprintf "qs: cannot read %s: %s\n" file message;
      exit 1
  in
  let program =
    try Qs_lang.Lang.parse source with
    | Qs_lang.Lexer.Lex_error { line; message } ->
      Printf.eprintf "%s:%d: lexical error: %s\n" file line message;
      exit 1
    | Qs_lang.Parser.Parse_error { line; message } ->
      Printf.eprintf "%s:%d: parse error: %s\n" file line message;
      exit 1
  in
  try lang_checked optimize explore_flag domains program with
  | Qs_lang.Check.Check_error { client; message } ->
    Printf.eprintf "%s: error in client %s: %s\n" file client message;
    exit 1
  | Qs_lang.To_semantics.Unsupported message ->
    Printf.eprintf "%s: cannot explore: %s\n" file message;
    exit 1

(* -- CLI wiring ---------------------------------------------------------------- *)

let explore_cmd =
  let prog =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (n, _) -> (n, n)) programs))) None
      & info [] ~docv:"PROGRAM")
  in
  let mode =
    Arg.(
      value
      & opt (enum (List.map (fun (n, _) -> (n, n)) modes)) "qs"
      & info [ "semantics" ] ~doc:"Rule set: qs, qs-client-exec or original.")
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Exhaustively explore a paper example program")
    Term.(const explore $ prog $ mode)

let syncopt_cmd =
  let kernel =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"KERNEL")
  in
  Cmd.v
    (Cmd.info "syncopt" ~doc:"Run the static sync-coalescing pass on a kernel")
    Term.(const syncopt $ kernel)

let sim_cmd =
  let task = Arg.(value & opt (some string) None & info [ "task" ]) in
  let lang = Arg.(value & opt (some string) None & info [ "lang" ]) in
  Cmd.v
    (Cmd.info "sim" ~doc:"Simulated speedup curves (Fig. 19)")
    Term.(const sim $ task $ lang)

let demo_cmd =
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Enable detailed event tracing.")
  in
  let mailbox =
    Arg.(
      value
      & opt (enum [ ("qoq", `Qoq); ("direct", `Direct) ]) `Qoq
      & info [ "mailbox" ] ~docv:"MAILBOX"
          ~doc:
            "Handler communication structure: $(b,qoq) (queue-of-queues, \
             Fig. 4) or $(b,direct) (lock + single request queue, Fig. 2).")
  in
  let batch =
    Arg.(
      value
      & opt int Scoop.Config.default_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Max requests a handler drains per wakeup (>= 1); 1 reproduces \
             the paper's one-dequeue-per-iteration handler loop.")
  in
  let spsc =
    Arg.(
      value
      & opt (enum [ ("linked", `Linked); ("ring", `Ring) ]) `Linked
      & info [ "spsc" ] ~docv:"KIND"
          ~doc:
            "Private-queue backing store: $(b,linked) (unbounded list) or \
             $(b,ring) (bounded Lamport ring).")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Small end-to-end SCOOP program with statistics")
    Term.(const demo $ trace $ mailbox $ batch $ spsc)

let lang_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let optimize =
    Arg.(value & flag & info [ "optimize" ] ~doc:"Run the sync-coalescing pass.")
  in
  let explore =
    Arg.(value & flag & info [ "explore" ] ~doc:"Exhaustively explore instead of running.")
  in
  let domains = Arg.(value & opt int 1 & info [ "domains" ]) in
  Cmd.v
    (Cmd.info "lang"
       ~doc:"Run, optimize or explore a Quicksilver-mini (.scoop) program")
    Term.(const lang $ file $ optimize $ explore $ domains)

let () =
  let doc = "SCOOP/Qs companion tool: semantics explorer, sync-coalescing pass, simulator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "qs" ~doc)
          [ explore_cmd; syncopt_cmd; sim_cmd; demo_cmd; lang_cmd ]))
