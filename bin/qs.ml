(* Command-line companion tool:

     qs explore <fig1|fig5|fig5-nested|fig6|fig6-queries|fig6-queries-outer>
         — exhaustively explore a paper example under a chosen semantics,
           reporting interleavings, deadlocks and guarantee checks.
     qs syncopt [kernel]
         — run the static sync-coalescing pass on the named kernel CFG
           (default: all) and print the removals.
     qs sim [--task t] [--lang l]
         — print simulated scalability curves from the calibrated model.
     qs demo [--deadline SECS] [--bound N --backpressure POLICY] [--pools]
         — a small end-to-end SCOOP program with runtime statistics;
           optionally walk through the deadline semantics (a query
           against a wedged handler raising Scoop.Timeout), the
           bounded-mailbox overflow policies, and the scheduler pools
           (a pinned handler's pool absorbing and shedding workers,
           with per-pool counters).
     qs faults [--mailbox m]
         — walk the failure paths (raising query, rejected promise,
           poisoned registration, aborted processor) and print the
           failure counters.
     qs trace <example> [--trace-out FILE]
         — run a traced example workload and print the merged
           per-processor / per-worker observability summary; optionally
           export a Chrome trace-event JSON file (chrome://tracing,
           ui.perfetto.dev).
     qs node <addr>
         — host SCOOP handlers at the address and serve remote clients
           until one sends a shutdown request.
     qs remote [--connect ADDRS]
         — run the same bank workload against the in-process endpoint
           and a remote node (self-hosted on a scratch socket unless
           --connect points at running `qs node` processes), and print
           the remote round-trip counters. *)

open Cmdliner

(* -- explore ---------------------------------------------------------------- *)

let programs =
  [
    ("fig1", Qs_semantics.Examples.fig1);
    ("fig5", Qs_semantics.Examples.fig5);
    ("fig5-nested", Qs_semantics.Examples.fig5_nested);
    ("fig6", Qs_semantics.Examples.fig6);
    ("fig6-queries", Qs_semantics.Examples.fig6_queries);
    ("fig6-queries-outer", Qs_semantics.Examples.fig6_queries_outer);
    ("fail-call", Qs_semantics.Examples.fail_call);
    ("fail-call-no-sync", Qs_semantics.Examples.fail_call_no_sync);
    ("timeout-call", Qs_semantics.Examples.timeout_call);
    ("shed-overload", Qs_semantics.Examples.shed_overload);
    ("poison-probe", Qs_semantics.Examples.poison_probe);
  ]

let modes =
  [
    ("qs", Qs_semantics.Step.qs);
    ("qs-client-exec", Qs_semantics.Step.qs_client_exec);
    ("original", Qs_semantics.Step.original);
  ]

let explore name mode_name with_reduced max_runs =
  let program = List.assoc name programs in
  let mode = List.assoc mode_name modes in
  let module E = Qs_semantics.Explore in
  let stats = E.reachable mode program in
  Printf.printf "program %s under %s semantics:\n" name mode_name;
  Printf.printf "  reachable states: %d%s\n" stats.E.states
    (if stats.E.truncated then " (truncated)" else "");
  Printf.printf "  terminal states:  %d\n" (List.length stats.E.terminals);
  Printf.printf "  deadlock states:  %d\n" (List.length stats.E.deadlocks);
  (match stats.E.deadlocks with
  | d :: _ ->
    Format.printf "  a deadlocked configuration:@.%a@." Qs_semantics.State.pp d
  | [] -> ());
  let traces, truncated =
    E.observable_traces ?max_runs mode program
      ~filter:(E.on_handler Qs_semantics.Examples.x)
  in
  Printf.printf "  distinct action orders on handler x: %d%s\n"
    (List.length traces)
    (if truncated then " (truncated)" else "");
  List.iter (fun tr -> Printf.printf "    [%s]\n" (String.concat "; " tr)) traces;
  let report = Qs_semantics.Guarantees.check_program ?max_runs mode program in
  (match report.Qs_semantics.Guarantees.violation with
  | None ->
    Printf.printf "  guarantee 2 holds over %d complete runs%s\n"
      report.Qs_semantics.Guarantees.runs
      (if report.Qs_semantics.Guarantees.truncated then
         " (TRUNCATED: not exhaustive)"
       else "")
  | Some (_, v) ->
    Format.printf "  GUARANTEE VIOLATION: %a@." Qs_semantics.Guarantees.pp_violation v);
  if with_reduced then begin
    let runs_reduced, rstats = E.reduced ?max_runs mode program in
    let reduced_traces =
      E.observable_of_runs runs_reduced
        ~filter:(E.on_handler Qs_semantics.Examples.x)
    in
    let exhaustive = (not rstats.E.truncated) && not truncated in
    Printf.printf "  DPOR-reduced search: %d states (unreduced BFS: %d)%s\n"
      rstats.E.states stats.E.states
      (if rstats.E.truncated then " (truncated)" else "");
    Printf.printf "  reduced deadlock states: %d\n"
      (List.length rstats.E.deadlocks);
    if reduced_traces = traces then
      Printf.printf
        "  observable traces agree between reduced and unreduced search \
         (%d traces%s)\n"
        (List.length traces)
        (if exhaustive then "" else "; both enumerations truncated")
    else if exhaustive then begin
      Printf.printf
        "  OBSERVABLE-TRACE MISMATCH: reduced search found %d traces, \
         unreduced %d\n"
        (List.length reduced_traces) (List.length traces);
      exit 1
    end
    else
      Printf.printf
        "  observable-trace comparison inconclusive under truncated \
         budgets (reduced %d, unreduced %d)\n"
        (List.length reduced_traces) (List.length traces);
    if
      (not rstats.E.truncated)
      && (List.length rstats.E.deadlocks > 0)
         <> (List.length stats.E.deadlocks > 0)
    then begin
      Printf.printf
        "  DEADLOCK DISAGREEMENT between reduced and unreduced search\n";
      exit 1
    end;
    if rstats.E.states < stats.E.states then
      Printf.printf "  reduction: %d of %d states pruned\n"
        (stats.E.states - rstats.E.states)
        stats.E.states
  end

(* -- syncopt ---------------------------------------------------------------- *)

let syncopt name =
  let kernels =
    match name with
    | None -> Qs_syncopt.Kernels.all
    | Some n -> (
      match List.assoc_opt n Qs_syncopt.Kernels.all with
      | Some k -> [ (n, k) ]
      | None ->
        Printf.eprintf "qs: unknown kernel %S; available: %s\n" n
          (String.concat ", " (List.map fst Qs_syncopt.Kernels.all));
        exit 1)
  in
  List.iter
    (fun (n, k) ->
      let cfg = k () in
      Printf.printf "== %s ==\n" n;
      Format.printf "%a" Qs_syncopt.Cfg.pp cfg;
      let report = Qs_syncopt.Pass.run cfg in
      Format.printf "%a@." Qs_syncopt.Pass.pp_report report)
    kernels

(* -- sim --------------------------------------------------------------------- *)

let sim task lang =
  let tasks =
    match task with
    | Some t -> [ t ]
    | None -> Qs_benchmarks.Paper_data.parallel_tasks
  in
  let langs =
    match lang with
    | Some l -> [ l ]
    | None -> Qs_benchmarks.Paper_data.languages
  in
  let cores = [ 1; 2; 4; 8; 16; 32 ] in
  List.iter
    (fun t ->
      List.iter
        (fun l ->
          match Qs_sim.Model.speedups ~task:t ~lang:l ~cores () with
          | None -> ()
          | Some curve ->
            Printf.printf "%-8s %-8s" t l;
            List.iter (fun (c, s) -> Printf.printf "  %2d:%5.1fx" c s) curve;
            print_newline ())
        langs)
    tasks

(* -- demo --------------------------------------------------------------------- *)

(* Deadline walkthrough (--deadline): a blocking query against a
   deliberately wedged handler abandons its rendezvous with
   [Scoop.Timeout] instead of blocking forever — and because a timeout
   does not poison the registration, the same handle still answers once
   the handler recovers. *)
let deadline_demo mailbox d =
  Scoop.Runtime.run ~domains:1
    ~config:Scoop.Config.(qoq |> with_mailbox mailbox)
    (fun rt ->
    let w = Scoop.Runtime.processor rt in
    Scoop.Runtime.separate rt w (fun reg ->
      Scoop.Registration.call reg (fun () -> Qs_sched.Sched.sleep (4.0 *. d));
      (match Scoop.Registration.query ~timeout:d reg (fun () -> 0) with
      | _ -> print_endline "deadline: query answered in time (unexpected here)"
      | exception Scoop.Timeout ->
        Printf.printf
          "deadline: query against a handler wedged for %.2fs raised \
           Scoop.Timeout after %.2fs\n"
          (4.0 *. d) d);
      let v = Scoop.Registration.query reg (fun () -> 42) in
      Printf.printf
        "deadline: the same registration answered %d once the handler \
         recovered (timeouts do not poison)\n"
        v);
    let s = Scoop.Stats.snapshot (Scoop.Runtime.stats rt) in
    Printf.printf "deadline: timers armed %d, timeouts fired %d\n"
      s.Scoop.Stats.s_timer_arms s.Scoop.Stats.s_timeouts_fired)

(* Backpressure walkthrough (--bound/--backpressure): wedge the handler,
   flood its bounded mailbox, and show what each overflow policy does
   with the backlog. *)
let backpressure_demo mailbox bound overflow =
  let policy =
    match overflow with
    | `Block -> "block"
    | `Fail -> "fail"
    | `Shed_oldest -> "shed"
  in
  let flood = 8 * bound in
  let s =
    Scoop.Runtime.run ~domains:2
      ~config:
        Scoop.Config.(
          qoq |> with_mailbox mailbox |> with_bound bound
          |> with_overflow overflow)
      (fun rt ->
      let w = Scoop.Runtime.processor rt in
      let served = Scoop.Shared.create w (ref 0) in
      (try
         Scoop.Runtime.separate rt w (fun reg ->
           (* The first call wedges the handler so the flood piles up. *)
           Scoop.Shared.apply reg served (fun r ->
             Qs_sched.Sched.sleep 0.02;
             incr r);
           for _ = 2 to flood do
             Scoop.Shared.apply reg served incr
           done;
           Scoop.Registration.sync reg)
       with
      | Scoop.Overloaded id ->
        Printf.printf
          "backpressure[%s]: admission refused by processor %d mid-flood\n"
          policy id
      | Scoop.Handler_failure (id, Scoop.Overloaded _) ->
        Printf.printf
          "backpressure[%s]: shed calls poisoned the registration on \
           processor %d\n"
          policy id);
      let r =
        Scoop.Runtime.separate rt w (fun reg ->
          Scoop.Shared.get reg served (fun r -> !r))
      in
      Printf.printf "backpressure[%s bound=%d]: %d of %d calls served\n" policy
        bound r flood;
      Scoop.Stats.snapshot (Scoop.Runtime.stats rt))
  in
  Printf.printf "backpressure[%s]: shed_requests = %d\n" policy
    s.Scoop.Stats.s_shed_requests

(* Scheduler-pool walkthrough (--pools): pin a handler to a dedicated
   "hot" pool, flood it from default-pool clients, and print the
   per-pool counters — idle workers migrate into the hot pool while it
   has pending injections and shrink away once it drains. *)
let pools_demo mailbox =
  let clients = 4 and per = 500 in
  let kv =
    Scoop.Runtime.run ~domains:2
      ~config:
        Scoop.Config.(qoq |> with_mailbox mailbox |> with_pools [ "hot" ])
      (fun rt ->
      let h = Scoop.Runtime.processor ~pool:"hot" rt in
      let cell = Scoop.Shared.create h (ref 0) in
      let latch = Qs_sched.Latch.create clients in
      for _ = 1 to clients do
        Qs_sched.Sched.spawn (fun () ->
          for _ = 1 to per do
            Scoop.Runtime.separate rt h (fun reg ->
              Scoop.Shared.apply reg cell incr)
          done;
          Qs_sched.Latch.count_down latch)
      done;
      Qs_sched.Latch.wait latch;
      let served =
        Scoop.Runtime.separate rt h (fun reg ->
          Scoop.Shared.get reg cell (fun r -> !r))
      in
      Printf.printf
        "pools: handler pinned to \"hot\" served %d calls from %d \
         default-pool clients\n"
        served clients;
      Scoop.Runtime.pool_counters ())
  in
  let v k = match List.assoc_opt k kv with Some n -> n | None -> 0 in
  Printf.printf
    "pools: pool_drains = %d, pool_migrations = %d, pool_idle_shrinks = %d\n"
    (v "pool_drains") (v "pool_migrations") (v "pool_idle_shrinks");
  List.iter
    (fun name ->
      Printf.printf
        "pools: %-8s workers=%d pending=%d drains=%d migrations=%d \
         idle_shrinks=%d\n"
        name
        (v (Printf.sprintf "pool.%s.workers" name))
        (v (Printf.sprintf "pool.%s.pending" name))
        (v (Printf.sprintf "pool.%s.drains" name))
        (v (Printf.sprintf "pool.%s.migrations" name))
        (v (Printf.sprintf "pool.%s.idle_shrinks" name)))
    [ "default"; "hot" ]

let demo trace_flag mailbox batch spsc deadline bound overflow pools_flag =
  if batch < 1 then begin
    Printf.eprintf "qs: --batch must be >= 1 (got %d)\n" batch;
    exit 1
  end;
  if bound < 0 then begin
    Printf.eprintf "qs: --bound must be >= 0 (got %d)\n" bound;
    exit 1
  end;
  (match deadline with
  | Some d when d <= 0.0 ->
    Printf.eprintf "qs: --deadline must be > 0 (got %g)\n" d;
    exit 1
  | _ -> ());
  let stats =
    Scoop.Runtime.run ~domains:1
      ~config:
        Scoop.Config.(
          qoq |> with_mailbox mailbox |> with_batch batch |> with_spsc spsc
          |> with_trace trace_flag)
      (fun rt ->
      let account = Scoop.Runtime.processor rt in
      let balance = Scoop.Shared.create account (ref 100) in
      let tellers = 4 and deposits = 1000 in
      let latch = Qs_sched.Latch.create tellers in
      for _ = 1 to tellers do
        Qs_sched.Sched.spawn (fun () ->
          for _ = 1 to deposits do
            Scoop.Runtime.separate rt account (fun reg ->
              Scoop.Shared.apply reg balance (fun b -> b := !b + 1))
          done;
          Qs_sched.Latch.count_down latch)
      done;
      Qs_sched.Latch.wait latch;
      (* Live mid-run scheduler counters: readable at any point from
         inside the scheduler (approximate until quiescence). *)
      (match Scoop.Runtime.sched_counters () with
      | Some c ->
        Format.printf "scheduler so far: %a@." Qs_sched.Sched.pp_counters c
      | None -> ());
      let final =
        Scoop.Runtime.separate rt account (fun reg ->
          Scoop.Shared.get reg balance (fun b -> !b))
      in
      Printf.printf "final balance: %d (expected %d)\n" final
        (100 + (tellers * deposits));
      (match Scoop.Runtime.trace rt with
      | Some tr ->
        Format.printf "detailed trace (§7 instrumentation):@.%a@."
          Scoop.Trace.pp_summary (Scoop.Trace.summarize tr)
      | None -> ());
      Scoop.Stats.snapshot (Scoop.Runtime.stats rt))
  in
  Format.printf "runtime statistics:@.%a@." Scoop.Stats.pp_snapshot stats;
  Option.iter (fun d -> deadline_demo mailbox d) deadline;
  if bound > 0 then backpressure_demo mailbox bound overflow;
  if pools_flag then pools_demo mailbox

(* -- faults ------------------------------------------------------------------- *)

(* Walk through each failure path of the request pipeline — raising
   blocking query, rejected pipelined query, poisoned registration,
   aborted processor — and print the failure counters that account for
   them. *)
let faults mailbox =
  let lifecycle_name = function
    | Scoop.Processor.Running -> "running"
    | Scoop.Processor.Draining -> "draining"
    | Scoop.Processor.Stopped -> "stopped"
    | Scoop.Processor.Failed -> "failed"
  in
  let stats =
    Scoop.Runtime.run ~domains:1
      ~config:Scoop.Config.(qoq |> with_mailbox mailbox)
      (fun rt ->
      let worker = Scoop.Runtime.processor rt in
      let cell = Scoop.Shared.create worker (ref 0) in
      (* A raising blocking query re-raises on the client; the
         registration stays clean. *)
      Scoop.Runtime.separate rt worker (fun reg ->
        Scoop.Shared.apply reg cell incr;
        match Scoop.Registration.query reg (fun () -> failwith "query fault") with
        | _ -> assert false
        | exception Failure _ ->
          print_endline "blocking query: failure re-raised at the call site");
      (* A raising pipelined query rejects its promise; forcing
         re-raises. *)
      Scoop.Runtime.separate rt worker (fun reg ->
        let p =
          Scoop.Registration.query_async reg (fun () -> failwith "promise fault")
        in
        match Scoop.Promise.await p with
        | _ -> assert false
        | exception Failure _ ->
          print_endline "pipelined query: promise rejected, await re-raised");
      (* A raising asynchronous call poisons the registration: the
         dirty-processor rule surfaces it as Handler_failure at the next
         sync point. *)
      (try
         Scoop.Runtime.separate rt worker (fun reg ->
           Scoop.Registration.call reg (fun () -> failwith "call fault");
           ignore (Scoop.Shared.get reg cell (fun r -> !r) : int))
       with Scoop.Handler_failure (id, e) ->
         Printf.printf
           "asynchronous call: registration on processor %d poisoned by %s\n"
           id (Printexc.to_string e));
      (* The handler survived every fault. *)
      let v =
        Scoop.Runtime.separate rt worker (fun reg ->
          Scoop.Shared.get reg cell (fun r -> !r))
      in
      Printf.printf "handler survived the faults: cell = %d\n" v;
      Scoop.Runtime.shutdown rt;
      Printf.printf "lifecycle after shutdown: %s\n"
        (lifecycle_name (Scoop.Processor.lifecycle worker));
      Scoop.Stats.snapshot (Scoop.Runtime.stats rt))
  in
  (* Aborting discards still-pending requests unexecuted. *)
  let aborted =
    Scoop.Runtime.run ~domains:1
      ~config:Scoop.Config.(qoq |> with_mailbox mailbox)
      (fun rt ->
      let w = Scoop.Runtime.processor rt in
      let cell = Scoop.Shared.create w (ref 0) in
      Scoop.Runtime.separate rt w (fun reg ->
        for _ = 1 to 5 do
          Scoop.Shared.apply reg cell incr
        done);
      Scoop.Runtime.abort rt;
      (Scoop.Stats.snapshot (Scoop.Runtime.stats rt))
        .Scoop.Stats.s_aborted_requests)
  in
  Printf.printf "abort: discarded %d pending requests unexecuted\n" aborted;
  Format.printf "runtime statistics:@.%a@." Scoop.Stats.pp_snapshot stats

(* -- trace -------------------------------------------------------------------- *)

(* Example workloads for `qs trace`.  Each exercises all three
   instrumented layers — scheduler workers, processor handlers, client
   operations — so the exported Chrome trace shows the whole stack. *)

let quickstart rt =
  (* The demo's bank tellers, plus periodic audit queries so the trace
     contains sync/query round trips as well as asynchronous calls. *)
  let account = Scoop.Runtime.processor rt in
  let balance = Scoop.Shared.create account (ref 100) in
  let tellers = 4 and deposits = 200 in
  let latch = Qs_sched.Latch.create tellers in
  for _ = 1 to tellers do
    Qs_sched.Sched.spawn (fun () ->
      for i = 1 to deposits do
        Scoop.Runtime.separate rt account (fun reg ->
          Scoop.Shared.apply reg balance (fun b -> b := !b + 1);
          if i mod 50 = 0 then
            ignore (Scoop.Shared.get reg balance (fun b -> !b) : int))
      done;
      Qs_sched.Latch.count_down latch)
  done;
  Qs_sched.Latch.wait latch;
  ignore
    (Scoop.Runtime.separate rt account (fun reg ->
       Scoop.Shared.get reg balance (fun b -> !b))
      : int)

let prodcons rt =
  (* Bounded producer/consumer over two handlers with wait conditions:
     reservations, wait retries and multi-handler transfers. *)
  let buf_proc = Scoop.Runtime.processor rt in
  let sink_proc = Scoop.Runtime.processor rt in
  let buffer = Scoop.Shared.create buf_proc (Queue.create ()) in
  let consumed = Scoop.Shared.create sink_proc (ref 0) in
  let items = 500 in
  let latch = Qs_sched.Latch.create 2 in
  Qs_sched.Sched.spawn (fun () ->
    for i = 1 to items do
      Scoop.Runtime.separate_when rt buf_proc
        ~pred:(fun reg -> Scoop.Shared.get reg buffer Queue.length < 16)
        (fun reg -> Scoop.Shared.apply reg buffer (fun q -> Queue.push i q))
    done;
    Qs_sched.Latch.count_down latch);
  Qs_sched.Sched.spawn (fun () ->
    for _ = 1 to items do
      let v =
        Scoop.Runtime.separate_when rt buf_proc
          ~pred:(fun reg -> Scoop.Shared.get reg buffer Queue.length > 0)
          (fun reg -> Scoop.Shared.get reg buffer Queue.pop)
      in
      Scoop.Runtime.separate rt sink_proc (fun reg ->
        Scoop.Shared.apply reg consumed (fun c -> c := !c + v))
    done;
    Qs_sched.Latch.count_down latch);
  Qs_sched.Latch.wait latch;
  let total =
    Scoop.Runtime.separate rt sink_proc (fun reg ->
      Scoop.Shared.get reg consumed (fun c -> !c))
  in
  Printf.printf "consumed %d items (checksum %d, expected %d)\n" items total
    (items * (items + 1) / 2)

let trace_examples =
  [ ("quickstart", quickstart); ("prodcons", prodcons) ]

let trace_run name out domains mailbox batch =
  if batch < 1 then begin
    Printf.eprintf "qs: --batch must be >= 1 (got %d)\n" batch;
    exit 1
  end;
  let workload = List.assoc name trace_examples in
  let sink = Qs_obs.Sink.create () in
  let sched = ref None in
  let stats =
    Scoop.Runtime.run ~domains
      ~config:Scoop.Config.(qoq |> with_mailbox mailbox |> with_batch batch)
      ~obs:sink
      ~on_counters:(fun c -> sched := Some c)
      (fun rt ->
        workload rt;
        Scoop.Runtime.stats rt)
  in
  (* The scheduler has quiesced: sink readers and counters are exact. *)
  Format.printf "== per-processor summary (client/core events) ==@.%a@."
    Scoop.Trace.pp_summary
    (Scoop.Trace.summarize (Scoop.Trace.of_sink sink));
  Format.printf "== event tracks ==@.%a@." Qs_obs.Sink.pp_track_summary sink;
  (match !sched with
  | Some c -> Format.printf "== scheduler ==@.%a@." Qs_sched.Sched.pp_counters c
  | None -> ());
  Format.printf "== runtime counters ==@.%a@." Qs_obs.Counter.pp_snapshot
    (Scoop.Stats.assoc stats);
  Printf.printf "events retained: %d, dropped to ring overflow: %d\n"
    (Qs_obs.Sink.recorded sink) (Qs_obs.Sink.dropped sink);
  match out with
  | None -> ()
  | Some path ->
    let counters =
      Scoop.Stats.assoc stats
      @ (match !sched with
        | Some c -> Qs_sched.Sched.counters_assoc c
        | None -> [])
    in
    Qs_obs.Chrome.write_file ~counters
      ~histograms:(Scoop.Stats.hist_assoc stats)
      sink path;
    Printf.printf
      "wrote Chrome trace to %s (load in chrome://tracing or ui.perfetto.dev)\n"
      path

(* -- check -------------------------------------------------------------------- *)

(* Traced conformance scenarios for `qs check`: each runs a small
   workload under tracing and then replays the recorded event rings
   through the conformance automaton of the operational semantics
   (Qs_conform partitions the merged stream per registration before
   handing each partition to Qs_semantics.Replay).  The scenarios
   deliberately cover the failure vocabulary — timeouts, shed requests,
   poisoned registrations — not just the happy path. *)

let check_basic rt =
  (* Concurrent clients over two handlers: asynchronous calls, blocking
     queries, pipelined queries, and the dynamic sync elision those
     produce.  Several client fibers per handler is the point — the
     merged ring interleaves their watermarks, which is exactly what the
     per-registration partitioning must untangle. *)
  let a = Scoop.Runtime.processor rt in
  let b = Scoop.Runtime.processor rt in
  let ca = Scoop.Shared.create a (ref 0) in
  let cb = Scoop.Shared.create b (ref 0) in
  let clients = 3 and rounds = 25 in
  let latch = Qs_sched.Latch.create clients in
  for _ = 1 to clients do
    Qs_sched.Sched.spawn (fun () ->
      for i = 1 to rounds do
        Scoop.Runtime.separate rt a (fun reg ->
          Scoop.Shared.apply reg ca incr;
          if i mod 5 = 0 then
            ignore (Scoop.Shared.get reg ca (fun r -> !r) : int));
        Scoop.Runtime.separate rt b (fun reg ->
          Scoop.Shared.apply reg cb incr;
          let p = Scoop.Registration.query_async reg (fun () -> 0) in
          ignore (Scoop.Promise.await p : int))
      done;
      Qs_sched.Latch.count_down latch)
  done;
  Qs_sched.Latch.wait latch

let check_timeout rt =
  (* A deliberately wedged handler: the bounded query abandons its
     rendezvous (a TimedOut event — a no-op on the automaton, the log
     stays intact) and the same registration then recovers with an
     unbounded query after the slow call drains. *)
  let h = Scoop.Runtime.processor rt in
  let r = ref 0 in
  Scoop.Runtime.separate rt h (fun reg ->
    Scoop.Registration.call reg (fun () ->
      Qs_sched.Sched.sleep 0.15;
      incr r);
    (match Scoop.Registration.query ~timeout:0.02 reg (fun () -> !r) with
    | _ -> failwith "wedged query must time out"
    | exception Scoop.Timeout -> ());
    if Scoop.Registration.query reg (fun () -> !r) <> 1 then
      failwith "recovery query must observe the slow call")

let check_shed rt =
  (* Overflow a bounded handler under [`Shed_oldest]: the wedge call
     holds the handler while the flood crosses the bound, so the oldest
     pending calls are shed (Shed events, attributed to this
     registration) and the poison surfaces as [Overloaded] at the sync
     point. *)
  let h = Scoop.Runtime.processor rt in
  let r = ref 0 in
  let surfaced = ref false in
  (try
     Scoop.Runtime.separate rt h (fun reg ->
       Scoop.Registration.call reg (fun () -> Qs_sched.Sched.sleep 0.05);
       for _ = 1 to 6 do
         Scoop.Registration.call reg (fun () -> incr r)
       done;
       match Scoop.Registration.query reg (fun () -> !r) with
       | _ -> ()
       | exception Scoop.Handler_failure (_, Scoop.Overloaded _) ->
         surfaced := true)
   with Scoop.Handler_failure (_, Scoop.Overloaded _) -> surfaced := true);
  if not !surfaced then
    print_endline
      "  note: flood drained without shedding (fast handler); trace still \
       checked"

let check_poison rt =
  (* A raising asynchronous call poisons its registration; the next sync
     point surfaces [Handler_failure].  The Poisoned event marks the
     stream dirty — from here an elided sync would be a violation, and
     the runtime indeed never elides across the poison.  The handler
     itself survives for the next registration. *)
  let h = Scoop.Runtime.processor rt in
  let cell = Scoop.Shared.create h (ref 0) in
  (try
     Scoop.Runtime.separate rt h (fun reg ->
       Scoop.Registration.call reg (fun () -> failwith "check: call fault");
       ignore (Scoop.Shared.get reg cell (fun r -> !r) : int));
     failwith "poisoned sync must raise Handler_failure"
   with Scoop.Handler_failure _ -> ());
  let v =
    Scoop.Runtime.separate rt h (fun reg ->
      Scoop.Shared.apply reg cell incr;
      Scoop.Shared.get reg cell (fun r -> !r))
  in
  if v <> 1 then failwith "handler must survive the poisoned registration"

let check_scenarios =
  [
    ( "basic",
      (check_basic, Scoop.Config.all, "concurrent calls/queries/elisions") );
    ( "timeout",
      (check_timeout, Scoop.Config.all, "wedged query abandons its rendezvous")
    );
    ( "shed",
      ( check_shed,
        Scoop.Config.(all |> with_bound 2 |> with_overflow `Shed_oldest),
        "bounded handler sheds oldest under overflow" ) );
    ( "poison",
      (check_poison, Scoop.Config.all, "failed call poisons the registration")
    );
  ]

let check_run only break_flag domains =
  let scenarios =
    match only with
    | None -> check_scenarios
    | Some n -> [ (n, List.assoc n check_scenarios) ]
  in
  let failures = ref 0 in
  let injected_caught = ref 0 in
  List.iter
    (fun (name, (workload, config, blurb)) ->
      Printf.printf "== %s: %s ==\n%!" name blurb;
      let sink = Qs_obs.Sink.create () in
      Scoop.Runtime.run ~domains ~config ~obs:sink (fun rt -> workload rt);
      let tr = Scoop.Trace.of_sink sink in
      (match Qs_conform.check_trace tr with
      | Error e ->
        incr failures;
        Format.printf "  UNCHECKABLE: %a@." Qs_conform.pp_error e
      | Ok report ->
        Format.printf "  @[<v>%a@]@." Qs_conform.pp_report report;
        if report.Qs_conform.violations <> [] then incr failures
        else if break_flag then begin
          (* Negative control: hand-break the trace by appending an
             execution the client never logged, on a stream that really
             exists, and insist the checker notices. *)
          match report.Qs_conform.streams with
          | [] -> ()
          | s :: _ ->
            Scoop.Trace.record tr ~proc:s.Qs_conform.st_proc
              ~client:s.Qs_conform.st_client
              (Scoop.Trace.Call_executed 0.);
            (match Qs_conform.check_trace tr with
            | Ok broken when broken.Qs_conform.violations <> [] ->
              incr injected_caught;
              Format.printf
                "  injected phantom execution caught: %a@."
                Qs_conform.pp_violation
                (List.hd broken.Qs_conform.violations)
            | Ok _ ->
              incr failures;
              print_endline
                "  BROKEN TRACE NOT DETECTED: injected phantom execution \
                 passed the checker"
            | Error e ->
              incr failures;
              Format.printf "  UNCHECKABLE after injection: %a@."
                Qs_conform.pp_error e)
        end);
      print_newline ())
    scenarios;
  if !failures > 0 then begin
    Printf.printf "qs check: FAILED (%d scenario(s) with violations)\n"
      !failures;
    exit 1
  end;
  if break_flag then
    if !injected_caught = List.length scenarios then
      Printf.printf
        "qs check: ok — %d scenario(s) conform, all injected breaks caught\n"
        (List.length scenarios)
    else begin
      Printf.printf
        "qs check: FAILED — only %d of %d injected breaks caught\n"
        !injected_caught (List.length scenarios);
      exit 1
    end
  else
    Printf.printf "qs check: ok — %d scenario(s), 0 violations\n"
      (List.length scenarios)

(* -- node / remote ------------------------------------------------------------ *)

let parse_addr s =
  match Scoop.Config.addr_of_string s with
  | Some a -> a
  | None ->
    Printf.eprintf
      "qs: bad address %S (expected unix:PATH or tcp:HOST:PORT)\n" s;
    exit 1

let node_run addr_s domains =
  Scoop.Remote.listen ~domains (parse_addr addr_s)

(* Distributed demo state.  Remote closures execute against the *node's*
   module-level globals (Marshal.Closures ships code, not captured
   state), so the workload keeps its handler state here — and that same
   discipline is what lets it run unmodified against both endpoints. *)
let remote_balance = Atomic.make 0

(* The demo bank, written once and run against either endpoint: every
   touch of the balance goes through the registration, including the
   initial reset, so the state lives wherever the processor does. *)
let remote_workload rt =
  let account = Scoop.Runtime.processor rt in
  let tellers = 4 and deposits = 250 in
  Scoop.Runtime.separate rt account (fun reg ->
    Scoop.Registration.call reg (fun () -> Atomic.set remote_balance 100));
  let latch = Qs_sched.Latch.create tellers in
  for _ = 1 to tellers do
    Qs_sched.Sched.spawn (fun () ->
      for i = 1 to deposits do
        Scoop.Runtime.separate rt account (fun reg ->
          Scoop.Registration.call reg (fun () -> Atomic.incr remote_balance);
          (* Periodic audits keep query round trips in the mix. *)
          if i mod 50 = 0 then
            ignore
              (Scoop.Registration.query reg (fun () ->
                 Atomic.get remote_balance)
                : int))
      done;
      Qs_sched.Latch.count_down latch)
  done;
  Qs_sched.Latch.wait latch;
  Scoop.Runtime.separate rt account (fun reg ->
    Scoop.Registration.query reg (fun () -> Atomic.get remote_balance))

let remote_demo connect shutdown_flag =
  let expected = 100 + (4 * 250) in
  (* Bad addresses fail before any endpoint runs. *)
  let connect_addrs =
    Option.map
      (fun s -> List.map parse_addr (String.split_on_char ',' s))
      connect
  in
  (* In-process endpoint first: the reference run. *)
  let local =
    Scoop.Runtime.run ~domains:2 ~config:Scoop.Config.qoq remote_workload
  in
  Printf.printf "in-process endpoint: final balance %d (expected %d)\n" local
    expected;
  (* Then the same workload over a connection.  Self-host a node on a
     scratch unix socket unless --connect names running nodes. *)
  let addrs, hosted =
    match connect_addrs with
    | Some addrs -> (addrs, None)
    | None ->
      let path =
        Printf.sprintf "%s/qs_demo_%d.sock"
          (Filename.get_temp_dir_name ())
          (Unix.getpid ())
      in
      let addr = Scoop.Config.Unix_sock path in
      let d = Domain.spawn (fun () -> Scoop.Remote.listen addr) in
      ([ addr ], Some d)
  in
  let remote, stats, rtt =
    Scoop.Runtime.run
      ~config:(Scoop.Remote.connect addrs)
      (fun rt ->
        let st = Scoop.Runtime.stats rt in
        let v = remote_workload rt in
        let s = Scoop.Stats.snapshot st in
        let rtt =
          Qs_obs.Histogram.dist (Scoop.Stats.histograms st) "query_remote_ns"
        in
        if shutdown_flag || hosted <> None then Scoop.Runtime.shutdown_nodes rt;
        (v, s, rtt))
  in
  Option.iter Domain.join hosted;
  Printf.printf "remote endpoint (%s): final balance %d (expected %d)\n"
    (String.concat "," (List.map Scoop.Config.addr_to_string addrs))
    remote expected;
  Printf.printf
    "remote round trips: %d requests, %d replies, %d failures, rtt p50 %.3f \
     ms, p99 %.3f ms\n"
    stats.Scoop.Stats.s_remote_requests stats.Scoop.Stats.s_remote_replies
    stats.Scoop.Stats.s_remote_failures
    (float_of_int (Qs_obs.Histogram.quantile rtt 0.5) /. 1e6)
    (float_of_int (Qs_obs.Histogram.quantile rtt 0.99) /. 1e6);
  if local <> expected || remote <> expected then begin
    Printf.eprintf "qs: endpoint results diverge\n";
    exit 1
  end;
  if stats.Scoop.Stats.s_remote_requests = 0 then begin
    Printf.eprintf "qs: no remote round trips recorded\n";
    exit 1
  end

(* -- lang --------------------------------------------------------------------- *)

let lang_checked optimize explore_flag domains program =
  if optimize then
    List.iter
      (fun r -> Format.printf "%a@." Qs_lang.Lang.Codegen.pp_report r)
      (Qs_lang.Lang.Codegen.optimize program)
  else if explore_flag then begin
    let stats = Qs_lang.Lang.To_semantics.explore program in
    Printf.printf "reachable states: %d%s\n" stats.Qs_semantics.Explore.states
      (if stats.Qs_semantics.Explore.truncated then " (truncated)" else "");
    Printf.printf "deadlock states:  %d\n"
      (List.length stats.Qs_semantics.Explore.deadlocks);
    match stats.Qs_semantics.Explore.deadlocks with
    | d :: _ -> Format.printf "%a@." Qs_semantics.State.pp d
    | [] -> ()
  end
  else begin
    let out = Qs_lang.Lang.Compile.run ~domains program in
    List.iter
      (fun (h, vars) ->
        Printf.printf "%s: %s\n" h
          (String.concat ", "
             (List.map (fun (v, n) -> Printf.sprintf "%s = %d" v n) vars)))
      out.Qs_lang.Compile.finals;
    match out.Qs_lang.Compile.printed with
    | [] -> ()
    | printed ->
      Printf.printf "printed: %s\n"
        (String.concat ", " (List.map string_of_int printed))
  end


let lang file optimize explore_flag domains =
  if optimize && explore_flag then begin
    Printf.eprintf "qs: --optimize and --explore are mutually exclusive\n";
    exit 1
  end;
  let source =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error message ->
      Printf.eprintf "qs: cannot read %s: %s\n" file message;
      exit 1
  in
  let program =
    try Qs_lang.Lang.parse source with
    | Qs_lang.Lexer.Lex_error { line; message } ->
      Printf.eprintf "%s:%d: lexical error: %s\n" file line message;
      exit 1
    | Qs_lang.Parser.Parse_error { line; message } ->
      Printf.eprintf "%s:%d: parse error: %s\n" file line message;
      exit 1
  in
  try lang_checked optimize explore_flag domains program with
  | Qs_lang.Check.Check_error { client; message } ->
    Printf.eprintf "%s: error in client %s: %s\n" file client message;
    exit 1
  | Qs_lang.To_semantics.Unsupported message ->
    Printf.eprintf "%s: cannot explore: %s\n" file message;
    exit 1

(* -- serve --------------------------------------------------------------------- *)

(* Open-loop SLO harness: drive the runtime at one or more target arrival
   rates and report coordinated-omission-safe latency per rate.  A sweep
   makes the knee visible: the highest rate still inside the SLO next to
   the first rate that sheds or blows the deadline. *)
let serve_run rate sweep clients handlers duration arrivals burst service_us
    deadline bound overflow seed domains json check_slo =
  let duration =
    let s =
      if String.length duration > 1
         && duration.[String.length duration - 1] = 's'
      then String.sub duration 0 (String.length duration - 1)
      else duration
    in
    match float_of_string_opt s with
    | Some f when f > 0. -> f
    | _ ->
      Printf.eprintf "qs: bad --duration %S (expected e.g. 2 or 2s)\n" duration;
      exit 124
  in
  let spec =
    {
      Qs_load.Load_gen.rate;
      clients;
      handlers;
      duration;
      arrivals =
        (match arrivals with
        | `Poisson -> Qs_load.Load_gen.Poisson
        | `Bursty -> Qs_load.Load_gen.Bursty burst);
      service_us;
      mix = (1, 1, 2);
      seed;
    }
  in
  let config =
    Scoop.Config.qoq
    |> Scoop.Config.with_deadline deadline
    |> fun c ->
    if bound > 0 then
      c |> Scoop.Config.with_bound bound |> Scoop.Config.with_overflow overflow
    else c
  in
  let rates =
    match sweep with
    | None -> [ rate ]
    | Some s ->
      List.map
        (fun r ->
          match float_of_string_opt (String.trim r) with
          | Some f when f > 0. -> f
          | _ ->
            Printf.eprintf "qs: bad rate %S in --sweep\n" r;
            exit 124)
        (String.split_on_char ',' s)
  in
  let points =
    List.map
      (fun r ->
        let p =
          Qs_load.Load_gen.run_point ~domains ~config { spec with rate = r }
        in
        Format.printf "%a@." (Qs_load.Load_gen.pp_point ~deadline) p;
        p)
      rates
  in
  (match Qs_load.Load_gen.knee ~deadline points with
  | Some ok, Some bad ->
    Format.printf "knee: %.1f/s in SLO, degrades by %.1f/s@." ok bad
  | Some ok, None -> Format.printf "all swept rates in SLO (up to %.1f/s)@." ok
  | None, Some bad ->
    Format.printf "no swept rate meets the SLO (first tried %.1f/s)@." bad
  | None, None -> ());
  Option.iter
    (fun path ->
      Qs_obs.Json.write_file path
        (Qs_load.Load_gen.report_json ~deadline ~domains spec points);
      Printf.printf "wrote %s\n" path)
    json;
  if check_slo && not (List.for_all (Qs_load.Load_gen.in_slo ~deadline) points)
  then begin
    Printf.eprintf "qs: SLO violated (deadline %.3fs)\n" deadline;
    exit 1
  end

(* -- CLI wiring ---------------------------------------------------------------- *)

let explore_cmd =
  let prog =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (n, _) -> (n, n)) programs))) None
      & info [] ~docv:"PROGRAM")
  in
  let mode =
    Arg.(
      value
      & opt (enum (List.map (fun (n, _) -> (n, n)) modes)) "qs"
      & info [ "semantics" ] ~doc:"Rule set: qs, qs-client-exec or original.")
  in
  let reduced =
    Arg.(
      value & flag
      & info [ "reduced" ]
          ~doc:
            "Also run the DPOR-reduced search and cross-check it against \
             the unreduced enumeration (exits non-zero on disagreement).")
  in
  let max_runs =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-runs" ] ~docv:"N"
          ~doc:
            "Run-enumeration budget for the trace, guarantee and DPOR \
             searches (default $(b,100000)); raise it until no \
             enumeration reports truncation for an exhaustive verdict.")
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Exhaustively explore a paper example program")
    Term.(const explore $ prog $ mode $ reduced $ max_runs)

let syncopt_cmd =
  let kernel =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"KERNEL")
  in
  Cmd.v
    (Cmd.info "syncopt" ~doc:"Run the static sync-coalescing pass on a kernel")
    Term.(const syncopt $ kernel)

let sim_cmd =
  let task = Arg.(value & opt (some string) None & info [ "task" ]) in
  let lang = Arg.(value & opt (some string) None & info [ "lang" ]) in
  Cmd.v
    (Cmd.info "sim" ~doc:"Simulated speedup curves (Fig. 19)")
    Term.(const sim $ task $ lang)

let demo_cmd =
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Enable detailed event tracing.")
  in
  let mailbox =
    Arg.(
      value
      & opt (enum [ ("qoq", `Qoq); ("direct", `Direct) ]) `Qoq
      & info [ "mailbox" ] ~docv:"MAILBOX"
          ~doc:
            "Handler communication structure: $(b,qoq) (queue-of-queues, \
             Fig. 4) or $(b,direct) (lock + single request queue, Fig. 2).")
  in
  let batch =
    Arg.(
      value
      & opt int Scoop.Config.default_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Max requests a handler drains per wakeup (>= 1); 1 reproduces \
             the paper's one-dequeue-per-iteration handler loop.")
  in
  let spsc =
    Arg.(
      value
      & opt (enum [ ("linked", `Linked); ("ring", `Ring) ]) `Linked
      & info [ "spsc" ] ~docv:"KIND"
          ~doc:
            "Private-queue backing store: $(b,linked) (unbounded list) or \
             $(b,ring) (bounded Lamport ring).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Also walk through the deadline semantics: a blocking query \
             with this timeout against a wedged handler raises \
             Scoop.Timeout without poisoning the registration.")
  in
  let bound =
    Arg.(
      value
      & opt int 0
      & info [ "bound" ] ~docv:"N"
          ~doc:
            "Also walk through mailbox backpressure: bound each handler's \
             admitted-but-undrained requests to $(docv) (0 = unbounded, \
             skip the walkthrough) and flood a wedged handler.")
  in
  let backpressure =
    Arg.(
      value
      & opt
          (enum [ ("block", `Block); ("fail", `Fail); ("shed", `Shed_oldest) ])
          `Block
      & info [ "backpressure" ] ~docv:"POLICY"
          ~doc:
            "Overflow policy for --bound: $(b,block) (admission backs off), \
             $(b,fail) (admission raises Scoop.Overloaded) or $(b,shed) \
             (shed the oldest pending request, poisoning its client).")
  in
  let pools =
    Arg.(
      value & flag
      & info [ "pools" ]
          ~doc:
            "Also walk through scheduler pools: pin a handler to a \
             dedicated $(b,hot) pool, flood it from default-pool clients, \
             and print the per-pool drain/migration/shrink counters.")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Small end-to-end SCOOP program with statistics")
    Term.(const demo $ trace $ mailbox $ batch $ spsc $ deadline $ bound
          $ backpressure $ pools)

let faults_cmd =
  let mailbox =
    Arg.(
      value
      & opt (enum [ ("qoq", `Qoq); ("direct", `Direct) ]) `Qoq
      & info [ "mailbox" ] ~docv:"MAILBOX"
          ~doc:"Handler communication structure: $(b,qoq) or $(b,direct).")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Demonstrate the failure semantics: raising queries, rejected \
          promises, poisoned registrations and aborted processors")
    Term.(const faults $ mailbox)

let trace_cmd =
  let example =
    Arg.(
      required
      & pos 0
          (some (enum (List.map (fun (n, _) -> (n, n)) trace_examples)))
          None
      & info [] ~docv:"EXAMPLE"
          ~doc:"Traced workload: $(b,quickstart) or $(b,prodcons).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the merged event trace as Chrome trace-event JSON \
             (loadable in chrome://tracing or ui.perfetto.dev).")
  in
  let domains = Arg.(value & opt int 2 & info [ "domains" ] ~docv:"N") in
  let mailbox =
    Arg.(
      value
      & opt (enum [ ("qoq", `Qoq); ("direct", `Direct) ]) `Qoq
      & info [ "mailbox" ] ~docv:"MAILBOX")
  in
  let batch =
    Arg.(value & opt int Scoop.Config.default_batch & info [ "batch" ] ~docv:"N")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a traced example and print the merged per-processor / \
          per-worker observability summary")
    Term.(const trace_run $ example $ out $ domains $ mailbox $ batch)

let check_cmd =
  let scenario =
    Arg.(
      value
      & pos 0
          (some (enum (List.map (fun (n, _) -> (n, n)) check_scenarios)))
          None
      & info [] ~docv:"SCENARIO"
          ~doc:
            "Run only one scenario: $(b,basic), $(b,timeout), $(b,shed) or \
             $(b,poison).  Default: all of them.")
  in
  let break_flag =
    Arg.(
      value & flag
      & info [ "break" ]
          ~doc:
            "Negative control: after each conforming run, append a phantom \
             execution to the recorded trace and fail unless the checker \
             reports it as a violation.")
  in
  let domains = Arg.(value & opt int 2 & info [ "domains" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run traced workloads (including timeout, shed and poison \
          scenarios) and replay the event rings through the semantics' \
          conformance automaton; non-zero exit on any violation")
    Term.(const check_run $ scenario $ break_flag $ domains)

let node_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:"Address to listen on: $(b,unix:PATH) or $(b,tcp:HOST:PORT).")
  in
  let domains = Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "node"
       ~doc:
         "Host SCOOP handlers behind the socket transport and serve remote \
          clients until one sends a shutdown request")
    Term.(const node_run $ addr $ domains)

let remote_cmd =
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDRS"
          ~doc:
            "Comma-separated node addresses (processor $(b,id) is routed to \
             node $(b,id mod n): the static shard map).  Without this flag \
             the demo self-hosts a node on a scratch unix socket.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:
            "Ask the connected nodes to stop after the workload (implied \
             for the self-hosted node).")
  in
  Cmd.v
    (Cmd.info "remote"
       ~doc:
         "Run the same workload against the in-process and remote endpoints \
          and print the remote round-trip counters")
    Term.(const remote_demo $ connect $ shutdown)

let lang_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let optimize =
    Arg.(value & flag & info [ "optimize" ] ~doc:"Run the sync-coalescing pass.")
  in
  let explore =
    Arg.(value & flag & info [ "explore" ] ~doc:"Exhaustively explore instead of running.")
  in
  let domains = Arg.(value & opt int 1 & info [ "domains" ]) in
  Cmd.v
    (Cmd.info "lang"
       ~doc:"Run, optimize or explore a Quicksilver-mini (.scoop) program")
    Term.(const lang $ file $ optimize $ explore $ domains)

let serve_cmd =
  let rate =
    Arg.(
      value & opt float 400.
      & info [ "rate" ] ~docv:"R"
          ~doc:"Target aggregate arrival rate, requests per second.")
  in
  let sweep =
    Arg.(
      value
      & opt (some string) None
      & info [ "sweep" ] ~docv:"R1,R2,..."
          ~doc:
            "Comma-separated rates to sweep (one fresh runtime per rate); \
             overrides $(b,--rate) and prints the knee.")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N"
         ~doc:"Simulated open-loop clients.")
  in
  let handlers =
    Arg.(value & opt int 2 & info [ "handlers" ] ~docv:"N"
         ~doc:"Handler processors receiving the traffic.")
  in
  let duration =
    Arg.(value & opt string "2"
         & info [ "duration" ] ~docv:"SECONDS"
             ~doc:
               "Open-loop issue window (drain time excluded); a trailing \
                $(b,s) is accepted, e.g. $(b,2s).")
  in
  let arrivals =
    Arg.(
      value
      & opt (enum [ ("poisson", `Poisson); ("bursty", `Bursty) ]) `Poisson
      & info [ "arrivals" ] ~docv:"KIND"
          ~doc:"Arrival process: $(b,poisson) or $(b,bursty).")
  in
  let burst =
    Arg.(value & opt int 16 & info [ "burst" ] ~docv:"N"
         ~doc:"Burst size for $(b,--arrivals bursty).")
  in
  let service_us =
    Arg.(value & opt float 50.
         & info [ "service-us" ] ~docv:"US"
             ~doc:"Busy-work burned per request on the handler.")
  in
  let deadline =
    Arg.(value & opt float 0.05
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:
               "Default deadline on blocking queries; also the SLO bound \
                checked against the client p99.")
  in
  let bound =
    Arg.(value & opt int 512
         & info [ "bound" ] ~docv:"N"
             ~doc:"Per-handler queue bound (0 = unbounded).")
  in
  let overflow =
    Arg.(
      value
      & opt
          (enum
             [ ("block", `Block); ("fail", `Fail); ("shed-oldest", `Shed_oldest) ])
          `Shed_oldest
      & info [ "overflow" ] ~docv:"POLICY"
          ~doc:"Admission policy past the bound.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
         ~doc:"Root RNG seed; arrivals are deterministic per seed.")
  in
  let domains = Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N") in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the per-rate time series as BENCH_load.json schema.")
  in
  let check_slo =
    Arg.(
      value & flag
      & info [ "check-slo" ]
          ~doc:
            "Exit non-zero unless every measured rate meets the SLO: p99 at \
             or under the deadline with zero sheds, timeouts and failures.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Open-loop load harness: drive the runtime at target arrival rates \
          and report coordinated-omission-safe latency, sheds and timeouts")
    Term.(
      const serve_run $ rate $ sweep $ clients $ handlers $ duration
      $ arrivals $ burst $ service_us $ deadline $ bound $ overflow $ seed
      $ domains $ json $ check_slo)

let () =
  let doc = "SCOOP/Qs companion tool: semantics explorer, sync-coalescing pass, simulator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "qs" ~doc)
          [
            explore_cmd;
            syncopt_cmd;
            sim_cmd;
            demo_cmd;
            faults_cmd;
            trace_cmd;
            check_cmd;
            node_cmd;
            remote_cmd;
            serve_cmd;
            lang_cmd;
          ]))
